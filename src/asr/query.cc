#include "asr/query.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "asr/access_support_relation.h"

namespace asr {

Status QueryEvaluator::ExpandLevel(
    const std::vector<AsrKey>& sources, uint32_t q,
    std::vector<std::pair<AsrKey, AsrKey>>* edges) {
  const PathStep& step = path_->step(q + 1);
  std::vector<Oid> oids;
  oids.reserve(sources.size());
  for (AsrKey key : sources) {
    if (key.IsOid()) oids.push_back(key.ToOid());
  }
  // Distinct OIDs in OID order: the frontier may carry duplicates, and the
  // page-batched fetch groups best when same-page objects (adjacent OIDs)
  // arrive together.
  std::sort(oids.begin(), oids.end());
  oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
  Result<std::vector<std::pair<Oid, std::vector<AsrKey>>>> targets =
      store_->GetAttributeTargets(std::move(oids), step.attr_name);
  ASR_RETURN_IF_ERROR(targets.status());
  for (const auto& [owner, values] : *targets) {
    for (AsrKey value : values) {
      edges->emplace_back(AsrKey::FromOid(owner), value);
    }
  }
  return Status::OK();
}

Result<std::vector<AsrKey>> QueryEvaluator::ForwardNoSupport(AsrKey start,
                                                             uint32_t i,
                                                             uint32_t j) {
  if (i >= j || j > path_->n()) {
    return Status::InvalidArgument("need 0 <= i < j <= n");
  }
  fwd_queries_.Inc();
  // Forward chasing never revisits a level, so the frontier needs no set
  // semantics until the end: ExpandLevel dedupes its sources and a final
  // unique pass collapses the result. One edges/sources pair is reused
  // across levels instead of reallocating per level.
  std::vector<AsrKey> sources{start};
  std::vector<std::pair<AsrKey, AsrKey>> edges;
  for (uint32_t q = i; q < j; ++q) {
    frontier_sizes_.Observe(sources.size());
    obs::ScopedSpan level("level");
    if (level.active()) {
      level.Attr("from_pos", static_cast<uint64_t>(q));
      level.Attr("to_pos", static_cast<uint64_t>(q + 1));
      level.Attr("frontier", static_cast<uint64_t>(sources.size()));
    }
    edges.clear();
    ASR_RETURN_IF_ERROR(ExpandLevel(sources, q, &edges));
    sources.clear();
    sources.reserve(edges.size());
    for (const auto& [src, dst] : edges) sources.push_back(dst);
    if (sources.empty()) break;
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

Result<std::vector<AsrKey>> QueryEvaluator::BackwardNoSupport(AsrKey target,
                                                              uint32_t i,
                                                              uint32_t j) {
  if (i >= j || j > path_->n()) {
    return Status::InvalidArgument("need 0 <= i < j <= n");
  }
  bwd_queries_.Inc();
  const gom::Schema& schema = store_->schema();

  // Level i: exhaustive scan of the t_i extent (op_i page accesses, §5.6.2),
  // collecting every edge of attribute A_{i+1}; deeper levels fetch only the
  // objects actually referenced — RefBy(i, l, d_i) of them (Eq. 32).
  std::vector<std::vector<std::pair<AsrKey, AsrKey>>> level_edges(j);
  std::vector<AsrKey> sources;
  {
    obs::ScopedSpan scan("extent_scan");
    scan.Attr("position", static_cast<uint64_t>(i));
    const PathStep& step = path_->step(i + 1);
    for (TypeId t = 0; t < schema.type_count(); ++t) {
      if (!schema.IsTuple(t) || !schema.IsSubtypeOf(t, step.domain_type)) {
        continue;
      }
      Status st = store_->ScanWithTargets(
          t, step.attr_name,
          [&](Oid owner, const std::vector<AsrKey>& values) -> Status {
            for (AsrKey value : values) {
              level_edges[i].emplace_back(AsrKey::FromOid(owner), value);
            }
            return Status::OK();
          });
      ASR_RETURN_IF_ERROR(st);
    }
    sources.reserve(level_edges[i].size());
    for (const auto& [src, dst] : level_edges[i]) sources.push_back(dst);
  }

  // Intermediate levels i+1 .. j-1: fetch each connected object once
  // (ExpandLevel dedupes the frontier; the sources buffer is reused).
  for (uint32_t q = i + 1; q < j && !sources.empty(); ++q) {
    frontier_sizes_.Observe(sources.size());
    obs::ScopedSpan level("level");
    if (level.active()) {
      level.Attr("from_pos", static_cast<uint64_t>(q));
      level.Attr("to_pos", static_cast<uint64_t>(q + 1));
      level.Attr("frontier", static_cast<uint64_t>(sources.size()));
    }
    std::vector<std::pair<AsrKey, AsrKey>>& edges = level_edges[q];
    ASR_RETURN_IF_ERROR(ExpandLevel(sources, q, &edges));
    sources.clear();
    sources.reserve(edges.size());
    for (const auto& [src, dst] : edges) sources.push_back(dst);
  }

  // Back-propagate connectivity from the target (in memory).
  obs::ScopedSpan backprop("backpropagate");
  std::unordered_set<AsrKey> reaching{target};
  for (uint32_t q = j; q-- > i;) {
    std::unordered_set<AsrKey> prev;
    for (const auto& [src, dst] : level_edges[q]) {
      if (reaching.count(dst) > 0) prev.insert(src);
    }
    reaching = std::move(prev);
  }
  return std::vector<AsrKey>(reaching.begin(), reaching.end());
}

Result<ExplainResult> QueryEvaluator::Explain(QueryDir dir, AsrKey anchor,
                                              uint32_t i, uint32_t j,
                                              AccessSupportRelation* asr) {
  storage::BufferManager* buffers = store_->buffers();
  storage::Disk* disk = buffers->disk();
  // The probe reads the same AccessStats the Meter uses (global disk
  // counters plus the shared pool's hit/miss totals), so span costs are in
  // the model's unit. Reading statistics never touches pages: tracing does
  // not change the metered cost of the traced query.
  obs::ProbeFn probe = [buffers, disk] {
    obs::CostProbe p;
    storage::AccessStats st = disk->stats();
    p.page_reads = st.page_reads;
    p.page_writes = st.page_writes;
    p.buffer_hits = buffers->hits();
    p.buffer_misses = buffers->misses();
    return p;
  };

  const bool forward = dir == QueryDir::kForward;
  const bool use_asr = asr != nullptr && asr->SupportsQuery(i, j);
  obs::TraceContext ctx("query", std::move(probe));
  ctx.RootAttr("q", "Q_{" + std::to_string(i) + "," + std::to_string(j) + "}");
  ctx.RootAttr("dir", forward ? "fwd" : "bwd");
  ctx.RootAttr("plan", use_asr ? "asr" : "navigational");
  if (use_asr && asr->degraded()) {
    // Quarantined partitions answer by object-base navigation until
    // Repair(); flag the plan so the extra page reads are explicable.
    ctx.RootAttr("degraded", std::to_string(asr->quarantined_count()) +
                                 " partition(s) quarantined");
  }
  // Durability context: which sync policy was active and how many sync
  // requests the plan issued (0 for pure reads — anything else means the
  // query rode on a maintenance or flush path worth explaining).
  ctx.RootAttr("durability",
               storage::DurabilityModeName(disk->options().durability));
  const uint64_t syncs_before = disk->sync_requests();
  Result<std::vector<AsrKey>> keys =
      use_asr ? (forward ? asr->EvalForward(anchor, i, j)
                         : asr->EvalBackward(anchor, i, j))
              : (forward ? ForwardNoSupport(anchor, i, j)
                         : BackwardNoSupport(anchor, i, j));
  ASR_RETURN_IF_ERROR(keys.status());
  ctx.RootAttr("results", std::to_string(keys->size()));
  ctx.RootAttr("sync_requests",
               std::to_string(disk->sync_requests() - syncs_before));

  ExplainResult out;
  out.keys = std::move(*keys);
  out.used_asr = use_asr;
  out.trace = ctx.Finish();
  return out;
}

void QueryEvaluator::ExportMetrics(obs::MetricsRegistry* registry,
                                   const std::string& prefix) const {
  registry->Set(prefix + ".queries.forward", fwd_queries_);
  registry->Set(prefix + ".queries.backward", bwd_queries_);
  registry->SetHistogram(prefix + ".frontier_size", frontier_sizes_);
}

}  // namespace asr
