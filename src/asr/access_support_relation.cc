#include "asr/access_support_relation.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_set>
#include <utility>

#include "obs/events.h"
#include "obs/latency.h"
#include "obs/span.h"

namespace asr {

namespace {

bool AllNull(const rel::Row& row) {
  for (AsrKey k : row) {
    if (!k.IsNull()) return false;
  }
  return true;
}

rel::Row Slice(const rel::Row& row, uint32_t first, uint32_t last) {
  return rel::Row(row.begin() + first, row.begin() + last + 1);
}

// One lookup hop: probes `tree` with every frontier key and collects the
// non-null values of `rel_col` into `next`. Strict-metering configurations
// (buffer capacity 0) probe key by key so the realized page counts match the
// model's per-source ht + nlp charge exactly; with a real buffer pool the
// frontier is sorted and fed to the B+ tree's batched sorted probe, which
// amortizes descents across keys landing in the same leaves and prefetches
// sibling leaves — identical rows, fewer instructions.
void ProbeFrontier(btree::BTree* tree,
                   const std::unordered_set<AsrKey>& frontier,
                   uint32_t rel_col, std::unordered_set<AsrKey>* next) {
  if (tree->buffers()->capacity() == 0) {
    for (AsrKey key : frontier) {
      if (key.IsNull()) continue;
      tree->LookupEach(key, [&](const rel::Row& row) {
        AsrKey v = row[rel_col];
        if (!v.IsNull()) next->insert(v);
        return true;
      });
    }
    return;
  }
  std::vector<AsrKey> keys;
  keys.reserve(frontier.size());
  for (AsrKey key : frontier) {
    if (!key.IsNull()) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end(),
            [](AsrKey a, AsrKey b) { return a.raw() < b.raw(); });
  tree->LookupBatch(keys, [&](size_t, const rel::Row& row) {
    AsrKey v = row[rel_col];
    if (!v.IsNull()) next->insert(v);
    return true;
  });
}

// Runs `tasks` on up to `threads` workers (inline when one suffices). Tasks
// must touch disjoint state; the join provides the happens-before edge that
// makes the workers' disk-segment counters visible to the caller.
void RunOnPool(uint32_t threads, std::vector<std::function<void()>>* tasks) {
  if (tasks->empty()) return;
  uint32_t workers =
      std::min<uint32_t>(threads, static_cast<uint32_t>(tasks->size()));
  if (workers <= 1) {
    for (auto& task : *tasks) task();
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < tasks->size();
           i = next.fetch_add(1)) {
        (*tasks)[i]();
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

std::shared_ptr<PartitionStore> PartitionStore::Create(
    storage::BufferManager* shared, const std::string& name, uint32_t width,
    bool own_buffers) {
  auto store = std::make_shared<PartitionStore>();
  store->width = width;
  store->name = name;
  if (own_buffers) {
    store->private_buffers = std::make_unique<storage::BufferManager>(
        shared->disk(), shared->capacity());
  }
  store->buffers = own_buffers ? store->private_buffers.get() : shared;
  store->forward = std::make_unique<btree::BTree>(store->buffers,
                                                  name + ":fwd", width, 0);
  store->backward = std::make_unique<btree::BTree>(
      store->buffers, name + ":bwd", width, width - 1);
  return store;
}

Status PartitionStore::BulkLoad(std::vector<rel::Row> slices,
                                double fill_factor) {
  ASR_RETURN_IF_ERROR(forward->BulkLoad(slices, fill_factor));
  return backward->BulkLoad(std::move(slices), fill_factor);
}

void PartitionStore::ResetTrees() {
  ASR_CHECK(owners <= 1);
  forward = std::make_unique<btree::BTree>(buffers, name + ":fwd", width, 0);
  backward =
      std::make_unique<btree::BTree>(buffers, name + ":bwd", width, width - 1);
  refcounts.clear();
}

AccessSupportRelation::AccessSupportRelation(gom::ObjectStore* store,
                                             PathExpression path,
                                             ExtensionKind kind,
                                             Decomposition decomposition,
                                             AsrOptions options)
    : store_(store),
      path_(std::move(path)),
      kind_(kind),
      decomposition_(std::move(decomposition)),
      options_(options) {
  width_ = (options_.drop_set_columns ? path_.n() : path_.m()) + 1;
}

uint32_t AccessSupportRelation::ColumnOfPosition(uint32_t pos) const {
  return options_.drop_set_columns ? pos : path_.ColumnOfPosition(pos);
}

Result<std::unique_ptr<AccessSupportRelation>> AccessSupportRelation::Build(
    gom::ObjectStore* store, PathExpression path, ExtensionKind kind,
    Decomposition decomposition, AsrOptions options,
    const PartitionProvider& provider) {
  uint32_t m = options.drop_set_columns ? path.n() : path.m();
  if (decomposition.m() != m) {
    return Status::InvalidArgument(
        "decomposition " + decomposition.ToString() +
        " does not match the relation arity m=" + std::to_string(m));
  }
  Result<rel::Relation> extension =
      ComputeExtension(store, path, kind, options.drop_set_columns,
                       options.anchor_collection);
  ASR_RETURN_IF_ERROR(extension.status());

  std::unique_ptr<AccessSupportRelation> asr(
      new AccessSupportRelation(store, std::move(path), kind,
                                std::move(decomposition), options));

  std::string base = asr->path_.ToString() + ":" + ExtensionKindName(kind);
  std::vector<bool> fresh;
  for (size_t p = 0; p < asr->decomposition_.partition_count(); ++p) {
    auto [first, last] = asr->decomposition_.partition(p);
    Partition part;
    part.first = first;
    part.last = last;
    uint32_t w = last - first + 1;
    if (provider != nullptr) part.store = provider(p, first, last);
    bool is_fresh = (part.store == nullptr);
    if (!is_fresh) {
      if (part.store->width != w) {
        return Status::InvalidArgument(
            "shared partition store has width " +
            std::to_string(part.store->width) + ", partition needs " +
            std::to_string(w));
      }
      if (options.transactional && part.store->private_buffers == nullptr) {
        // A transactional writer stages its commit by flushing the store's
        // pool; sharing the object store's pool would sweep foreign dirty
        // pages into the transaction.
        return Status::InvalidArgument(
            "transactional ASRs require shared partition stores with "
            "private buffer pools (create the sibling ASR transactional "
            "too)");
      }
    } else {
      std::string pname =
          base + ":" + std::to_string(first) + "-" + std::to_string(last);
      part.store = PartitionStore::Create(
          store->buffers(), pname, w,
          /*own_buffers=*/options.transactional ||
              (options.bulk_load && options.build_threads > 1));
    }
    ++part.store->owners;
    fresh.push_back(is_fresh);
    asr->partitions_.push_back(std::move(part));
  }

  if (!options.bulk_load) {
    for (const rel::Row& row : extension->rows()) {
      asr->InsertRow(row);
    }
  } else {
    ASR_RETURN_IF_ERROR(asr->LoadRows(extension->rows(), fresh));
  }
  if (options.transactional) {
    // Version-manage the tree segments from here on: snapshot readers can
    // pin epochs and maintenance writes stage through transactions. The
    // build itself ran on the legacy path (no snapshot can predate us).
    ASR_RETURN_IF_ERROR(asr->RegisterTreeSegments());
  }
  ASR_RETURN_IF_ERROR(asr->ParanoidValidate());
  return asr;
}

Status AccessSupportRelation::LoadRows(const std::vector<rel::Row>& rows,
                                       const std::vector<bool>& fresh_store) {
  ASR_DCHECK(fresh_store.size() == partitions_.size());
  for (const rel::Row& row : rows) {
    ASR_DCHECK(row.size() == width_);
    full_rows_.insert(row);
  }
  // Slice and refcount serially; collect each fresh partition's distinct
  // slices for bulk load and push slices of pre-populated (shared) stores
  // tuple-at-a-time so existing contributions stay intact.
  std::vector<std::vector<rel::Row>> bulk_slices(partitions_.size());
  for (const rel::Row& row : full_rows_) {
    for (size_t p = 0; p < partitions_.size(); ++p) {
      Partition& part = partitions_[p];
      rel::Row slice = Slice(row, part.first, part.last);
      if (AllNull(slice)) continue;
      uint32_t& count = part.store->refcounts[slice];
      if (count++ != 0) continue;
      if (fresh_store[p]) {
        bulk_slices[p].push_back(std::move(slice));
      } else {
        part.store->forward->Insert(slice);
        part.store->backward->Insert(slice);
      }
    }
  }
  std::vector<Status> results(partitions_.size(), Status::OK());
  std::vector<std::function<void()>> tasks;
  bool all_private = true;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (!fresh_store[p]) continue;
    if (partitions_[p].store->private_buffers == nullptr) all_private = false;
    tasks.push_back([this, p, &bulk_slices, &results] {
      results[p] = partitions_[p].store->BulkLoad(std::move(bulk_slices[p]),
                                                  options_.fill_factor);
    });
  }
  // Concurrency is only sound when every builder pins through its own pool
  // (stores created for a serial build share the object store's pool).
  RunOnPool(all_private ? options_.build_threads : 1, &tasks);
  for (const Status& st : results) {
    ASR_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

void AccessSupportRelation::InsertRow(const rel::Row& row) {
  ASR_DCHECK(row.size() == width_);
  if (!full_rows_.insert(row).second) return;  // already present
  if (undo_active_) {
    undo_log_.push_back([this, row] { full_rows_.erase(row); });
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    Partition& part = partitions_[p];
    rel::Row slice = Slice(row, part.first, part.last);
    if (AllNull(slice)) continue;
    if (undo_active_) {
      // Reverse only the refcount effect; the tree insert rolls back
      // physically (staged pages dropped, meta restored).
      PartitionStore* ps = part.store.get();
      undo_log_.push_back([ps, slice] {
        auto it = ps->refcounts.find(slice);
        if (it != ps->refcounts.end() && --it->second == 0) {
          ps->refcounts.erase(it);
        }
      });
    }
    uint32_t& count = part.store->refcounts[slice];
    if (count++ == 0 && !part.store->quarantined) {
      // Quarantined trees are untrusted and untouched; the refcounts stay
      // exact so Repair() can rebuild from them.
      part.store->forward->Insert(slice);
      part.store->backward->Insert(slice);
    }
  }
}

void AccessSupportRelation::EraseRow(const rel::Row& row) {
  ASR_DCHECK(row.size() == width_);
  if (full_rows_.erase(row) == 0) return;  // row was not present
  if (undo_active_) {
    undo_log_.push_back([this, row] { full_rows_.insert(row); });
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    Partition& part = partitions_[p];
    rel::Row slice = Slice(row, part.first, part.last);
    if (AllNull(slice)) continue;
    auto it = part.store->refcounts.find(slice);
    if (it == part.store->refcounts.end()) continue;  // row was not present
    if (undo_active_) {
      PartitionStore* ps = part.store.get();
      undo_log_.push_back([ps, slice] { ++ps->refcounts[slice]; });
    }
    if (--it->second == 0) {
      if (!part.store->quarantined) {
        part.store->forward->Erase(slice);
        part.store->backward->Erase(slice);
      }
      part.store->refcounts.erase(it);
    }
  }
}

Result<std::vector<rel::Row>> AccessSupportRelation::PartitionRowsWithValue(
    size_t p_idx, uint32_t col, AsrKey value) {
  Partition& part = partitions_[p_idx];
  ASR_CHECK(part.first <= col && col <= part.last);
  std::vector<rel::Row> out;
  if (col == part.first) {
    part.store->forward->Lookup(value, &out);
    return out;
  }
  if (col == part.last) {
    part.store->backward->Lookup(value, &out);
    return out;
  }
  // Interior column: every page of the partition must be inspected (the ap
  // term of Eqs. 33/34).
  uint32_t rel_col = col - part.first;
  Status st = part.store->forward->ScanAll(
      [&](const std::vector<AsrKey>& row) -> Status {
        if (row[rel_col] == value) out.push_back(row);
        return Status::OK();
      });
  ASR_RETURN_IF_ERROR(st);
  return out;
}

Status AccessSupportRelation::PartitionEachRowWithValue(
    size_t p_idx, uint32_t col, AsrKey value,
    const std::function<bool(const rel::Row&)>& fn) {
  Partition& part = partitions_[p_idx];
  ASR_CHECK(part.first <= col && col <= part.last);
  if (col == part.first) {
    part.store->forward->LookupEach(value, fn);
    return Status::OK();
  }
  if (col == part.last) {
    part.store->backward->LookupEach(value, fn);
    return Status::OK();
  }
  uint32_t rel_col = col - part.first;
  bool stop = false;
  return part.store->forward->ScanAll(
      [&](const std::vector<AsrKey>& row) -> Status {
        if (!stop && row[rel_col] == value) stop = !fn(row);
        return Status::OK();
      });
}

Result<std::vector<AsrKey>> AccessSupportRelation::EvalForward(AsrKey start,
                                                               uint32_t i,
                                                               uint32_t j) {
  if (i >= j || j > path_.n()) {
    return Status::InvalidArgument("need 0 <= i < j <= n");
  }
  if (!SupportsQuery(i, j)) {
    return Status::NotSupported(
        "the " + ExtensionKindName(kind_) +
        " extension does not support Q_{" + std::to_string(i) + "," +
        std::to_string(j) + "}");
  }
  fwd_queries_.Inc();
  uint32_t c = ColumnOfPosition(i);
  const uint32_t cj = ColumnOfPosition(j);
  std::unordered_set<AsrKey> frontier{start};

  while (c < cj && !frontier.empty()) {
    int p_idx = decomposition_.PartitionStartingAt(c);
    bool via_lookup = (p_idx >= 0 && c < decomposition_.m());
    if (!via_lookup) p_idx = decomposition_.PartitionCovering(c);
    ASR_CHECK(p_idx >= 0);
    const Partition& part = partitions_[p_idx];
    uint32_t target = std::min(part.last, cj);
    frontier_sizes_.Observe(frontier.size());
    if (part.store->quarantined) {
      // Degrade to object-base navigation for this path slice (§4.1): same
      // answers, navigation page counts — metered separately.
      degraded_hops_.Inc();
      obs::LiveTelemetry::Instance().degraded_hops.Inc();
      ASR_EVENT(obs::EventKind::kDegradedNavigation,
                "dir=fwd partition=" + part.store->name);
      obs::ScopedSpan hop("hop");
      if (hop.active()) {
        hop.Attr("dir", std::string("fwd"));
        hop.Attr("partition", part.store->name);
        hop.Attr("mode", std::string("degraded"));
        hop.Attr("from_col", static_cast<uint64_t>(c));
        hop.Attr("to_col", static_cast<uint64_t>(target));
        hop.Attr("frontier", static_cast<uint64_t>(frontier.size()));
      }
      Result<std::unordered_set<AsrKey>> reached =
          NavigateForward(frontier, c, target);
      ASR_RETURN_IF_ERROR(reached.status());
      frontier = std::move(*reached);
      c = target;
      continue;
    }
    if (via_lookup) {
      hop_lookups_.Inc();
    } else {
      hop_scans_.Inc();
    }
    obs::ScopedSpan hop("hop");
    if (hop.active()) {
      hop.Attr("dir", std::string("fwd"));
      hop.Attr("partition", partitions_[p_idx].store->name);
      hop.Attr("mode", std::string(via_lookup ? "lookup" : "scan"));
      hop.Attr("from_col", static_cast<uint64_t>(c));
      hop.Attr("to_col", static_cast<uint64_t>(target));
      hop.Attr("frontier", static_cast<uint64_t>(frontier.size()));
    }
    std::unordered_set<AsrKey> next;
    if (via_lookup) {
      ProbeFrontier(partitions_[p_idx].store->forward.get(), frontier,
                    target - part.first, &next);
    } else {
      uint32_t rel_c = c - part.first;
      Status st = partitions_[p_idx].store->forward->ScanAll(
          [&](const std::vector<AsrKey>& row) -> Status {
            if (frontier.count(row[rel_c]) > 0 && !row[rel_c].IsNull()) {
              AsrKey v = row[target - part.first];
              if (!v.IsNull()) next.insert(v);
            }
            return Status::OK();
          });
      ASR_RETURN_IF_ERROR(st);
    }
    frontier = std::move(next);
    c = target;
  }
  return std::vector<AsrKey>(frontier.begin(), frontier.end());
}

Result<std::vector<AsrKey>> AccessSupportRelation::EvalBackward(AsrKey target,
                                                                uint32_t i,
                                                                uint32_t j) {
  if (i >= j || j > path_.n()) {
    return Status::InvalidArgument("need 0 <= i < j <= n");
  }
  if (!SupportsQuery(i, j)) {
    return Status::NotSupported(
        "the " + ExtensionKindName(kind_) +
        " extension does not support Q_{" + std::to_string(i) + "," +
        std::to_string(j) + "}");
  }
  bwd_queries_.Inc();
  const uint32_t ci = ColumnOfPosition(i);
  uint32_t c = ColumnOfPosition(j);
  std::unordered_set<AsrKey> frontier{target};

  while (c > ci && !frontier.empty()) {
    int p_idx = decomposition_.PartitionEndingAt(c);
    bool via_lookup = (p_idx >= 0 && c > 0);
    if (!via_lookup) p_idx = decomposition_.PartitionCovering(c);
    ASR_CHECK(p_idx >= 0);
    const Partition& part = partitions_[p_idx];
    uint32_t dest = std::max(part.first, ci);
    frontier_sizes_.Observe(frontier.size());
    if (part.store->quarantined) {
      degraded_hops_.Inc();
      obs::LiveTelemetry::Instance().degraded_hops.Inc();
      ASR_EVENT(obs::EventKind::kDegradedNavigation,
                "dir=bwd partition=" + part.store->name);
      obs::ScopedSpan hop("hop");
      if (hop.active()) {
        hop.Attr("dir", std::string("bwd"));
        hop.Attr("partition", part.store->name);
        hop.Attr("mode", std::string("degraded"));
        hop.Attr("from_col", static_cast<uint64_t>(c));
        hop.Attr("to_col", static_cast<uint64_t>(dest));
        hop.Attr("frontier", static_cast<uint64_t>(frontier.size()));
      }
      Result<std::unordered_set<AsrKey>> reached =
          NavigateBackward(frontier, c, dest);
      ASR_RETURN_IF_ERROR(reached.status());
      frontier = std::move(*reached);
      c = dest;
      continue;
    }
    if (via_lookup) {
      hop_lookups_.Inc();
    } else {
      hop_scans_.Inc();
    }
    obs::ScopedSpan hop("hop");
    if (hop.active()) {
      hop.Attr("dir", std::string("bwd"));
      hop.Attr("partition", partitions_[p_idx].store->name);
      hop.Attr("mode", std::string(via_lookup ? "lookup" : "scan"));
      hop.Attr("from_col", static_cast<uint64_t>(c));
      hop.Attr("to_col", static_cast<uint64_t>(dest));
      hop.Attr("frontier", static_cast<uint64_t>(frontier.size()));
    }
    std::unordered_set<AsrKey> next;
    if (via_lookup) {
      ProbeFrontier(partitions_[p_idx].store->backward.get(), frontier,
                    dest - part.first, &next);
    } else {
      uint32_t rel_c = c - part.first;
      Status st = partitions_[p_idx].store->forward->ScanAll(
          [&](const std::vector<AsrKey>& row) -> Status {
            if (frontier.count(row[rel_c]) > 0 && !row[rel_c].IsNull()) {
              AsrKey v = row[dest - part.first];
              if (!v.IsNull()) next.insert(v);
            }
            return Status::OK();
          });
      ASR_RETURN_IF_ERROR(st);
    }
    frontier = std::move(next);
    c = dest;
  }
  return std::vector<AsrKey>(frontier.begin(), frontier.end());
}

Status AccessSupportRelation::Rebuild() {
  // Transactional mode: hold every partition claim for the whole rebuild so
  // concurrent edge writers serialize against it (blocking, in the same
  // address order the try-lockers use — deadlock-free because try-lockers
  // never hold-and-wait). Snapshot readers are unaffected: solely-owned
  // stores rebuild into fresh segments, and retractions from shared stores
  // auto-version, so a snapshot's epoch keeps reading the old images.
  std::vector<std::unique_lock<std::mutex>> claims;
  if (options_.transactional) {
    for (PartitionStore* ps : DistinctStores()) {
      claims.emplace_back(ps->claim_mu);
    }
  }
  // Journal envelope: log intent, rebuild, commit only if every tree write
  // reached the disk (AnyWriteError is the durability signal — sticky write
  // errors on the shared and private pools).
  const uint64_t seq = journal_.BeginRebuild();
  Status st = RebuildImpl();
  if (st.ok() && !AnyWriteError()) {
    journal_.Commit(seq);
    return st;
  }
  journal_.MarkLost(seq);
  if (st.ok()) {
    return Status::IOError(
        "rebuild writes were lost; ASR requires Recover()");
  }
  return st;
}

Status AccessSupportRelation::RebuildImpl() {
  rebuilds_.Inc();
  obs::ScopedSpan span("rebuild");
  Result<rel::Relation> extension =
      ComputeExtension(store_, path_, kind_, options_.drop_set_columns,
                       options_.anchor_collection);
  ASR_RETURN_IF_ERROR(extension.status());
  rebuild_rows_.Inc(extension->rows().size());
  if (span.active()) {
    span.Attr("rows", static_cast<uint64_t>(extension->rows().size()));
    span.Attr("partitions", static_cast<uint64_t>(partitions_.size()));
    span.Attr("mode", std::string(options_.bulk_load ? "bulk" : "tuple"));
  }
  if (!options_.bulk_load) {
    // A rebuild restores quarantined stores too: their refcounts are exact,
    // so the trees can be reconstituted before normal maintenance resumes.
    for (Partition& part : partitions_) {
      if (part.store->quarantined) {
        ASR_RETURN_IF_ERROR(part.store->RebuildTrees(options_.fill_factor));
      }
    }
    // Retract this ASR's current rows (leaves sibling contributions to
    // shared stores untouched), then install the fresh extension.
    std::vector<rel::Row> old_rows(full_rows_.begin(), full_rows_.end());
    for (const rel::Row& row : old_rows) {
      EraseRow(row);
    }
    for (const rel::Row& row : extension->rows()) {
      InsertRow(row);
    }
    if (options_.transactional) {
      // Quarantined stores above got fresh segments; re-register.
      ASR_RETURN_IF_ERROR(RegisterTreeSegments());
    }
    return ParanoidValidate();
  }
  // Bulk path: solely-owned partition stores are reset to empty trees (their
  // shared_ptr identity survives, so catalog registrations stay valid) and
  // re-packed by sorted bulk load; shared stores must keep sibling ASRs'
  // contributions, so this ASR's old slices are retracted and the new ones
  // inserted tuple-at-a-time.
  std::vector<bool> fresh(partitions_.size(), false);
  std::vector<rel::Row> old_rows(full_rows_.begin(), full_rows_.end());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    Partition& part = partitions_[p];
    if (part.store->owners == 1) {
      part.store->ResetTrees();
      part.store->quarantined = false;  // fresh trees are trustworthy
      fresh[p] = true;
      continue;
    }
    if (part.store->quarantined) {
      // The retraction below edits the trees, which are untrusted; restore
      // them from the (exact, in-memory) refcounts first.
      ASR_RETURN_IF_ERROR(part.store->RebuildTrees(options_.fill_factor));
    }
    for (const rel::Row& row : old_rows) {
      rel::Row slice = Slice(row, part.first, part.last);
      if (AllNull(slice)) continue;
      auto it = part.store->refcounts.find(slice);
      if (it == part.store->refcounts.end()) continue;
      if (--it->second == 0) {
        part.store->forward->Erase(slice);
        part.store->backward->Erase(slice);
        part.store->refcounts.erase(it);
      }
    }
  }
  full_rows_.clear();
  ASR_RETURN_IF_ERROR(LoadRows(extension->rows(), fresh));
  if (options_.transactional) {
    // ResetTrees/RebuildTrees gave stores fresh segments; their bulk-loaded
    // pages were written pre-registration (unversioned — no snapshot can
    // reference a segment that did not exist), and from here on they are
    // version-managed again.
    ASR_RETURN_IF_ERROR(RegisterTreeSegments());
  }
  return ParanoidValidate();
}

Result<rel::Relation> AccessSupportRelation::DumpPartition(size_t idx) {
  ASR_CHECK(idx < partitions_.size());
  Partition& part = partitions_[idx];
  rel::Relation out(part.last - part.first + 1);
  Status st = part.store->forward->ScanAll(
      [&](const std::vector<AsrKey>& row) -> Status {
        out.AddRow(row);
        return Status::OK();
      });
  ASR_RETURN_IF_ERROR(st);
  return out;
}

Status AccessSupportRelation::ValidateStructure() {
  for (size_t p = 0; p < partitions_.size(); ++p) {
    Partition& part = partitions_[p];
    btree::BTree* fwd = part.store->forward.get();
    btree::BTree* bwd = part.store->backward.get();
    const std::string site = "partition " + part.store->name;
    if (part.store->quarantined) {
      // The trees are untrusted and must not be read; the refcounts are the
      // live state, so only their internal sanity can be checked here.
      for (const auto& [slice, count] : part.store->refcounts) {
        (void)slice;
        if (count == 0) {
          return Status::Corruption(site + ": zero refcount retained");
        }
      }
      if (part.store->owners == 1) {
        std::set<rel::Row> expected;
        for (const rel::Row& row : full_rows_) {
          rel::Row slice = Slice(row, part.first, part.last);
          if (!AllNull(slice)) expected.insert(std::move(slice));
        }
        if (expected.size() != part.store->refcounts.size()) {
          return Status::Corruption(
              site + ": quarantined refcounts do not key the projection");
        }
        for (const rel::Row& slice : expected) {
          if (part.store->refcounts.find(slice) ==
              part.store->refcounts.end()) {
            return Status::Corruption(
                site + ": quarantined refcounts miss a projected slice");
          }
        }
      }
      continue;
    }
    ASR_RETURN_IF_ERROR(fwd->CheckIntegrity());
    ASR_RETURN_IF_ERROR(bwd->CheckIntegrity());
    if (fwd->tuple_count() != bwd->tuple_count()) {
      return Status::Corruption(
          site + ": forward tree holds " +
          std::to_string(fwd->tuple_count()) + " tuples, backward " +
          std::to_string(bwd->tuple_count()));
    }
    // The two redundant trees (§5.2) must store the same tuple set.
    std::set<rel::Row> fwd_rows;
    std::set<rel::Row> bwd_rows;
    ASR_RETURN_IF_ERROR(fwd->ScanAll([&](const rel::Row& row) -> Status {
      fwd_rows.insert(row);
      return Status::OK();
    }));
    ASR_RETURN_IF_ERROR(bwd->ScanAll([&](const rel::Row& row) -> Status {
      bwd_rows.insert(row);
      return Status::OK();
    }));
    if (fwd_rows != bwd_rows) {
      return Status::Corruption(site +
                                ": forward and backward trees disagree");
    }
    // Refcounts key exactly the distinct slices the trees hold.
    if (part.store->refcounts.size() != fwd_rows.size()) {
      return Status::Corruption(
          site + ": " + std::to_string(part.store->refcounts.size()) +
          " refcounted slices vs " + std::to_string(fwd_rows.size()) +
          " stored tuples");
    }
    for (const auto& [slice, count] : part.store->refcounts) {
      if (count == 0) {
        return Status::Corruption(site + ": zero refcount retained");
      }
      if (fwd_rows.count(slice) == 0) {
        return Status::Corruption(site +
                                  ": refcounted slice missing from trees");
      }
    }
    // A solely owned store is exactly the Def. 3.8 projection of this ASR's
    // relation (shared stores additionally hold sibling contributions).
    if (part.store->owners == 1) {
      std::set<rel::Row> expected;
      for (const rel::Row& row : full_rows_) {
        rel::Row slice = Slice(row, part.first, part.last);
        if (!AllNull(slice)) expected.insert(std::move(slice));
      }
      if (expected != fwd_rows) {
        return Status::Corruption(
            site + ": stored tuples are not the projection of the relation");
      }
    }
  }
  return Status::OK();
}

std::string AccessSupportRelation::Describe() const {
  std::string out = "ASR over " + path_.ToString() + "  extension=" +
                    ExtensionKindName(kind_) + "  decomposition=" +
                    decomposition_.ToString() + "\n";
  out += "  rows=" + std::to_string(full_rows_.size()) + "  pages=" +
         std::to_string(TotalPages()) + "\n";
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition& part = partitions_[p];
    out += "  partition [" + std::to_string(part.first) + ".." +
           std::to_string(part.last) + "]";
    if (part.store->owners > 1) {
      out += " (shared by " + std::to_string(part.store->owners) + " ASRs)";
    }
    out += ": tuples=" + std::to_string(part.store->forward->tuple_count()) +
           " leaf_pages=" +
           std::to_string(part.store->forward->leaf_page_count()) +
           "+" + std::to_string(part.store->backward->leaf_page_count()) +
           " height=" + std::to_string(part.store->forward->height()) +
           "\n";
  }
  return out;
}

uint64_t AccessSupportRelation::TotalPages() const {
  uint64_t pages = 0;
  for (const Partition& part : partitions_) {
    pages += part.store->TotalPages();
  }
  return pages;
}

void AccessSupportRelation::ExportMetrics(obs::MetricsRegistry* registry,
                                          const std::string& prefix) const {
  registry->Set(prefix + ".queries.forward", fwd_queries_);
  registry->Set(prefix + ".queries.backward", bwd_queries_);
  registry->Set(prefix + ".hops.lookup", hop_lookups_);
  registry->Set(prefix + ".hops.scan", hop_scans_);
  registry->SetHistogram(prefix + ".frontier_size", frontier_sizes_);
  registry->Set(prefix + ".maintenance.edge_inserts", maint_edge_inserts_);
  registry->Set(prefix + ".maintenance.edge_removes", maint_edge_removes_);
  registry->Set(prefix + ".rebuilds", rebuilds_);
  registry->Set(prefix + ".rebuild_rows", rebuild_rows_);
  registry->Set(prefix + ".hops.degraded", degraded_hops_);
  registry->Set(prefix + ".recoveries", recoveries_);
  registry->Set(prefix + ".repairs", repairs_);
  registry->Set(prefix + ".quarantined", quarantined_count());
  journal_.ExportMetrics(registry, prefix + ".journal");
  registry->Set(prefix + ".rows", full_rows_.size());
  registry->Set(prefix + ".pages", TotalPages());
  registry->Set(prefix + ".partitions", partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition& part = partitions_[p];
    const std::string pp = prefix + ".partition." + part.store->name;
    registry->Set(pp + ".first_col", part.first);
    registry->Set(pp + ".last_col", part.last);
    registry->Set(pp + ".owners", part.store->owners);
    registry->Set(pp + ".quarantined", part.store->quarantined ? 1 : 0);
    registry->Set(pp + ".tuples", part.store->forward->tuple_count());
    registry->Set(pp + ".pages", part.store->TotalPages());
    part.store->forward->ExportMetrics(registry, pp + ".fwd");
    part.store->backward->ExportMetrics(registry, pp + ".bwd");
  }
}

}  // namespace asr
