#include "asr/sharing.h"

namespace asr {

namespace {

bool StepsMatch(const PathStep& a, const PathStep& b) {
  return a.attr_name == b.attr_name && a.domain_type == b.domain_type &&
         a.range_type == b.range_type && a.set_occurrence == b.set_occurrence;
}

}  // namespace

PathOverlap FindLongestOverlap(const PathExpression& a,
                               const PathExpression& b) {
  PathOverlap best;
  for (uint32_t ia = 0; ia < a.n(); ++ia) {
    for (uint32_t ib = 0; ib < b.n(); ++ib) {
      // The segments must start at the same type to share a partition whose
      // first column holds t_i OIDs.
      if (a.type_at(ia) != b.type_at(ib)) continue;
      uint32_t len = 0;
      while (ia + len < a.n() && ib + len < b.n() &&
             StepsMatch(a.step(ia + len + 1), b.step(ib + len + 1))) {
        ++len;
      }
      if (len > best.length) {
        best.a_start = ia;
        best.b_start = ib;
        best.length = len;
      }
    }
  }
  return best;
}

bool OverlapSharable(const PathOverlap& overlap, ExtensionKind kind,
                     const PathExpression& a, const PathExpression& b) {
  if (overlap.empty()) return false;
  switch (kind) {
    case ExtensionKind::kFull:
      // "In general, this sharing is only possible for full extensions."
      return true;
    case ExtensionKind::kLeftComplete:
      // Exception 1: both paths share the segment as a prefix (i = i' = 0).
      return overlap.a_start == 0 && overlap.b_start == 0;
    case ExtensionKind::kRightComplete:
      // Exception 2: both segments end at their path's terminal attribute.
      return overlap.a_start + overlap.length == a.n() &&
             overlap.b_start + overlap.length == b.n();
    case ExtensionKind::kCanonical:
      return false;
  }
  return false;
}

Decomposition SharingDecomposition(const PathOverlap& overlap, bool for_a,
                                   const PathExpression& path) {
  uint32_t start = for_a ? overlap.a_start : overlap.b_start;
  std::vector<uint32_t> cuts{0};
  if (start > 0) cuts.push_back(start);
  uint32_t end = start + overlap.length;
  if (end > cuts.back()) cuts.push_back(end);
  if (path.n() > cuts.back()) cuts.push_back(path.n());
  return Decomposition::Of(std::move(cuts), path.n()).value();
}

std::string SegmentSignature(const PathExpression& path, uint32_t start,
                             uint32_t length) {
  const gom::Schema& schema = path.schema();
  std::string sig = schema.name(path.type_at(start));
  for (uint32_t s = 1; s <= length; ++s) {
    sig += "." + path.step(start + s).attr_name;
  }
  return sig;
}

Result<AccessSupportRelation*> AsrCatalog::Build(PathExpression path,
                                                 ExtensionKind kind,
                                                 Decomposition decomposition) {
  // Sharability per partition (§5.4): a full-extension partition over a
  // chain segment is always sharable with the same segment of other full
  // ASRs; left-complete ASRs may share PREFIX partitions (first column 0)
  // with each other, right-complete ASRs SUFFIX partitions (last column n).
  // Signatures are namespaced by these rules so kinds never mix.
  const uint32_t n = path.n();
  std::vector<std::string> signatures(decomposition.partition_count());
  for (size_t p = 0; p < decomposition.partition_count(); ++p) {
    auto [first, last] = decomposition.partition(p);
    std::string sig = SegmentSignature(path, first, last - first);
    switch (kind) {
      case ExtensionKind::kFull:
        signatures[p] = "full:" + sig;
        break;
      case ExtensionKind::kLeftComplete:
        if (first == 0) signatures[p] = "left0:" + sig;
        break;
      case ExtensionKind::kRightComplete:
        if (last == n) signatures[p] = "rightN:" + sig;
        break;
      case ExtensionKind::kCanonical:
        break;  // never sharable
    }
  }

  uint64_t shared_before = shared_count_;
  PartitionProvider provider = [&](size_t idx, uint32_t, uint32_t)
      -> std::shared_ptr<PartitionStore> {
    if (signatures[idx].empty()) return nullptr;
    auto it = segments_.find(signatures[idx]);
    if (it == segments_.end()) return nullptr;
    ++shared_count_;
    return it->second;
  };

  Result<std::unique_ptr<AccessSupportRelation>> built =
      AccessSupportRelation::Build(store_, std::move(path), kind,
                                   std::move(decomposition), AsrOptions{},
                                   provider);
  if (!built.ok()) {
    shared_count_ = shared_before;
    return built.status();
  }
  AccessSupportRelation* asr = built->get();
  // Register this ASR's sharable partitions for future builds.
  for (size_t p = 0; p < asr->partition_count(); ++p) {
    if (!signatures[p].empty()) {
      segments_.emplace(signatures[p], asr->partition_store(p));
    }
  }
  asrs_.push_back(std::move(*built));
  return asr;
}

Status AsrCatalog::ForwardEdge(Oid u, const std::string& attr_name, AsrKey w,
                               bool inserted) {
  const gom::Schema& schema = store_->schema();
  for (const auto& asr : asrs_) {
    const PathExpression& path = asr->path();
    for (uint32_t p = 0; p < path.n(); ++p) {
      const PathStep& step = path.step(p + 1);
      if (step.attr_name != attr_name) continue;
      if (!schema.IsSubtypeOf(u.type_id(), step.domain_type)) continue;
      Status st = inserted ? asr->OnEdgeInserted(u, p, w)
                           : asr->OnEdgeRemoved(u, p, w);
      ASR_RETURN_IF_ERROR(st);
      break;  // one position per path (the paper's §6 assumption)
    }
  }
  return Status::OK();
}

Status AsrCatalog::OnEdgeInserted(Oid u, const std::string& attr_name,
                                  AsrKey w) {
  return ForwardEdge(u, attr_name, w, true);
}

Status AsrCatalog::OnEdgeRemoved(Oid u, const std::string& attr_name,
                                 AsrKey w) {
  return ForwardEdge(u, attr_name, w, false);
}

}  // namespace asr
