#include "asr/snapshot.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "asr/access_support_relation.h"
#include "asr/extension.h"
#include "storage/mvcc.h"

namespace asr {

namespace {

// Scalar frontier probe against a snapshot tree: key-by-key cluster lookups,
// collecting the non-null values of `rel_col`. The snapshot path always
// probes scalar — it serves isolation tests and concurrent readers, not the
// metered single-writer benchmarks the batched probe exists for.
void ProbeSnapshotFrontier(btree::BTree* tree,
                           const std::unordered_set<AsrKey>& frontier,
                           uint32_t rel_col,
                           std::unordered_set<AsrKey>* next) {
  for (AsrKey key : frontier) {
    if (key.IsNull()) continue;
    tree->LookupEach(key, [&](const std::vector<AsrKey>& row) {
      AsrKey v = row[rel_col];
      if (!v.IsNull()) next->insert(v);
      return true;
    });
  }
}

}  // namespace

Result<std::unique_ptr<AsrSnapshot>> AccessSupportRelation::OpenSnapshot() {
  if (!options_.transactional) {
    return Status::NotSupported(
        "OpenSnapshot requires AsrOptions::transactional");
  }
  storage::MvccManager* manager = mvcc();
  if (manager == nullptr) {
    return Status::NotSupported(
        "OpenSnapshot requires an MvccManager on the disk "
        "(Database::EnableMvcc)");
  }
  if (degraded()) {
    // Quarantined trees are untrusted on disk; a snapshot of them would
    // faithfully preserve garbage. Repair() first.
    return Status::NotSupported(
        "cannot snapshot a degraded ASR; run Repair() first");
  }
  // Claims (blocking, canonical address order) fence the capture against
  // in-flight writers: the epoch and the tree Metas are taken at an
  // operation boundary, together.
  std::vector<std::unique_lock<std::mutex>> claims;
  for (PartitionStore* ps : DistinctStores()) {
    claims.emplace_back(ps->claim_mu);
  }
  for (PartitionStore* ps : DistinctStores()) {
    // Committed transactions already wrote through; this sweeps any
    // remaining buffered page (e.g. build leftovers) to the backend so the
    // pinned epoch covers the full tree images.
    ASR_RETURN_IF_ERROR(ps->buffers->FlushAll());
  }
  std::unique_ptr<AsrSnapshot> snapshot(new AsrSnapshot(this));
  snapshot->snap_ = manager->BeginSnapshot();
  snapshot->pool_ = std::make_unique<storage::BufferManager>(
      store_->buffers()->disk(), store_->buffers()->capacity(),
      &snapshot->snap_);
  snapshot->partitions_.reserve(partitions_.size());
  for (const Partition& part : partitions_) {
    AsrSnapshot::SnapPartition sp;
    sp.first = part.first;
    sp.last = part.last;
    sp.forward = std::make_unique<btree::BTree>(snapshot->pool_.get(),
                                                part.store->forward->meta());
    sp.backward = std::make_unique<btree::BTree>(snapshot->pool_.get(),
                                                 part.store->backward->meta());
    snapshot->partitions_.push_back(std::move(sp));
  }
  return snapshot;
}

Result<std::vector<AsrKey>> AsrSnapshot::EvalForward(AsrKey start, uint32_t i,
                                                     uint32_t j) {
  if (i >= j || j > asr_->path().n()) {
    return Status::InvalidArgument("need 0 <= i < j <= n");
  }
  if (!asr_->SupportsQuery(i, j)) {
    return Status::NotSupported(
        "the " + std::string(ExtensionKindName(asr_->kind())) +
        " extension does not support Q_{" + std::to_string(i) + "," +
        std::to_string(j) + "}");
  }
  const Decomposition& dec = asr_->decomposition();
  uint32_t c = asr_->ColumnOfPosition(i);
  const uint32_t cj = asr_->ColumnOfPosition(j);
  std::unordered_set<AsrKey> frontier{start};

  // The live hop loop of AccessSupportRelation::EvalForward, over the
  // captured trees: cluster lookups at partition boundaries, full partition
  // scans for interior entry columns (Eq. 33).
  while (c < cj && !frontier.empty()) {
    int p_idx = dec.PartitionStartingAt(c);
    bool via_lookup = (p_idx >= 0 && c < dec.m());
    if (!via_lookup) p_idx = dec.PartitionCovering(c);
    ASR_CHECK(p_idx >= 0);
    const SnapPartition& part = partitions_[p_idx];
    uint32_t target = std::min(part.last, cj);
    std::unordered_set<AsrKey> next;
    if (via_lookup) {
      ProbeSnapshotFrontier(part.forward.get(), frontier, target - part.first,
                            &next);
    } else {
      uint32_t rel_c = c - part.first;
      Status st = part.forward->ScanAll(
          [&](const std::vector<AsrKey>& row) -> Status {
            if (frontier.count(row[rel_c]) > 0 && !row[rel_c].IsNull()) {
              AsrKey v = row[target - part.first];
              if (!v.IsNull()) next.insert(v);
            }
            return Status::OK();
          });
      ASR_RETURN_IF_ERROR(st);
    }
    frontier = std::move(next);
    c = target;
  }
  return std::vector<AsrKey>(frontier.begin(), frontier.end());
}

Result<std::vector<AsrKey>> AsrSnapshot::EvalBackward(AsrKey target,
                                                      uint32_t i, uint32_t j) {
  if (i >= j || j > asr_->path().n()) {
    return Status::InvalidArgument("need 0 <= i < j <= n");
  }
  if (!asr_->SupportsQuery(i, j)) {
    return Status::NotSupported(
        "the " + std::string(ExtensionKindName(asr_->kind())) +
        " extension does not support Q_{" + std::to_string(i) + "," +
        std::to_string(j) + "}");
  }
  const Decomposition& dec = asr_->decomposition();
  const uint32_t ci = asr_->ColumnOfPosition(i);
  uint32_t c = asr_->ColumnOfPosition(j);
  std::unordered_set<AsrKey> frontier{target};

  while (c > ci && !frontier.empty()) {
    int p_idx = dec.PartitionEndingAt(c);
    bool via_lookup = (p_idx >= 0 && c > 0);
    if (!via_lookup) p_idx = dec.PartitionCovering(c);
    ASR_CHECK(p_idx >= 0);
    const SnapPartition& part = partitions_[p_idx];
    uint32_t dest = std::max(part.first, ci);
    std::unordered_set<AsrKey> next;
    if (via_lookup) {
      ProbeSnapshotFrontier(part.backward.get(), frontier, dest - part.first,
                            &next);
    } else {
      uint32_t rel_c = c - part.first;
      Status st = part.forward->ScanAll(
          [&](const std::vector<AsrKey>& row) -> Status {
            if (frontier.count(row[rel_c]) > 0 && !row[rel_c].IsNull()) {
              AsrKey v = row[dest - part.first];
              if (!v.IsNull()) next.insert(v);
            }
            return Status::OK();
          });
      ASR_RETURN_IF_ERROR(st);
    }
    frontier = std::move(next);
    c = dest;
  }
  return std::vector<AsrKey>(frontier.begin(), frontier.end());
}

}  // namespace asr
