// Incremental maintenance of access support relations (paper §6).
//
// The update model is edge-granular: inserting (removing) a reference along
// attribute A_{p+1} between an object u at path position p and a key w at
// position p+1 — the paper's ins_i operation, plus its inverse and
// single-valued assignment built on top. As in §6 we adopt the simplifying
// assumption that an object occurs at only one position of the path, so a
// single edge change touches one position.
//
// The algorithm materializes the paper's auxiliary relations I_l and I_r
// (§6.1) as *fragments*:
//   LeftFragments(u, p)   — maximal partial paths over columns [0..p] ending
//                           in u, NULL-padded on the left when they do not
//                           originate in t_0;
//   RightFragments(w, p+1) — maximal partial paths over [p+1..n] from w.
// Where the chosen extension stores the needed side (full: both; left: the
// left side; right: the right side) the fragments are read from the ASR's
// B+ trees; otherwise they are searched in the object representation — the
// exact cost asymmetry the paper's search_i^X formulas (Eq. 36) analyze.
#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "asr/access_support_relation.h"
#include "obs/span.h"

namespace asr {

namespace {

rel::Row Concat(const rel::Row& a, const rel::Row& b) {
  rel::Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

rel::Row Nulls(size_t count) { return rel::Row(count, AsrKey::Null()); }

void Dedup(std::vector<rel::Row>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const rel::Row& a, const rel::Row& b) {
              return std::lexicographical_compare(a.begin(), a.end(),
                                                  b.begin(), b.end());
            });
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

}  // namespace

Result<std::vector<AsrKey>> AccessSupportRelation::OutEdges(Oid u,
                                                            uint32_t p) {
  const PathStep& step = path_.step(p + 1);
  Result<uint32_t> idx =
      store_->schema().FindAttribute(u.type_id(), step.attr_name);
  ASR_RETURN_IF_ERROR(idx.status());
  Result<AsrKey> value = store_->GetAttribute(u, *idx);
  ASR_RETURN_IF_ERROR(value.status());
  if (value->IsNull()) return std::vector<AsrKey>{};
  if (!step.set_occurrence) return std::vector<AsrKey>{*value};
  Result<gom::SetView> set = store_->GetSet(value->ToOid());
  ASR_RETURN_IF_ERROR(set.status());
  return set->members;
}

Result<bool> AccessSupportRelation::AttrDefined(AsrKey x, uint32_t q) {
  if (!x.IsOid()) return false;
  const PathStep& step = path_.step(q + 1);
  Result<uint32_t> idx =
      store_->schema().FindAttribute(x.ToOid().type_id(), step.attr_name);
  ASR_RETURN_IF_ERROR(idx.status());
  Result<AsrKey> value = store_->GetAttribute(x.ToOid(), *idx);
  ASR_RETURN_IF_ERROR(value.status());
  return !value->IsNull();
}

Result<bool> AccessSupportRelation::HasOtherInEdge(AsrKey w, uint32_t p1,
                                                   Oid exclude) {
  ASR_CHECK(p1 >= 1);
  const uint32_t p = p1 - 1;
  AsrKey exclude_key =
      exclude.IsNull() ? AsrKey::Null() : AsrKey::FromOid(exclude);

  if (kind_ == ExtensionKind::kFull ||
      kind_ == ExtensionKind::kRightComplete) {
    int e_idx = decomposition_.PartitionCovering(p);
    if (partitions_[e_idx].last < p1) {
      e_idx = decomposition_.PartitionStartingAt(p);
    }
    ASR_CHECK(e_idx >= 0 && partitions_[e_idx].first <= p &&
              p1 <= partitions_[e_idx].last);
    // The extension carries every in-edge of w that matters for dangling
    // rows, so the ASR itself answers (no data search — §6.1's claim for
    // the full extension). Exception: a partition store shared with other
    // ASRs (§5.4) may still hold a sibling's not-yet-maintained
    // contribution for this very edge; fall through to the data search.
    if (partitions_[e_idx].store->owners <= 1 &&
        !partitions_[e_idx].store->quarantined) {
      uint32_t rel_p = p - partitions_[e_idx].first;
      bool found_other = false;
      Status st = PartitionEachRowWithValue(
          static_cast<size_t>(e_idx), p1, w, [&](const rel::Row& row) {
            AsrKey v = row[rel_p];
            if (!v.IsNull() && v != exclude_key) {
              found_other = true;
              return false;  // existence settled — stop the probe
            }
            return true;
          });
      ASR_RETURN_IF_ERROR(st);
      return found_other;
    }
  }

  // Fallback: search the object representation (extent scan of t_p).
  const PathStep& step = path_.step(p1);
  bool found = false;
  const gom::Schema& schema = store_->schema();
  for (TypeId t = 0; t < schema.type_count() && !found; ++t) {
    if (!schema.IsTuple(t) || !schema.IsSubtypeOf(t, step.domain_type)) {
      continue;
    }
    Status st = store_->ScanTuples(
        t, [&](const gom::TupleView& view) -> Status {
          if (found) return Status::OK();
          if (!exclude.IsNull() && view.oid == exclude) return Status::OK();
          Result<uint32_t> idx =
              schema.FindAttribute(view.oid.type_id(), step.attr_name);
          ASR_RETURN_IF_ERROR(idx.status());
          AsrKey value = view.attrs[*idx];
          if (value.IsNull()) return Status::OK();
          if (!step.set_occurrence) {
            if (value == w) found = true;
            return Status::OK();
          }
          Result<bool> contains = store_->SetContains(value.ToOid(), w);
          ASR_RETURN_IF_ERROR(contains.status());
          if (*contains) found = true;
          return Status::OK();
        });
    ASR_RETURN_IF_ERROR(st);
  }
  return found;
}

Result<std::vector<rel::Row>> AccessSupportRelation::LeftFragments(
    Oid u, uint32_t p) {
  if (p == 0) {
    // Collection-anchored ASRs: a t_0 object outside C contributes nothing.
    if (!options_.anchor_collection.IsNull()) {
      Result<bool> member = store_->SetContains(
          options_.anchor_collection, AsrKey::FromOid(u));
      ASR_RETURN_IF_ERROR(member.status());
      if (!*member) return std::vector<rel::Row>{};
    }
    return std::vector<rel::Row>{rel::Row{AsrKey::FromOid(u)}};
  }
  if ((kind_ == ExtensionKind::kFull ||
       kind_ == ExtensionKind::kLeftComplete) &&
      !degraded()) {
    return LeftFragmentsFromAsr(u, p);
  }
  // Quarantined partitions make the ASR-side read untrusted; the object
  // base is authoritative either way.
  return LeftFragmentsFromStore(u, p);
}

Result<std::vector<rel::Row>> AccessSupportRelation::RightFragments(
    AsrKey w, uint32_t p1) {
  if (p1 == path_.n()) {
    return std::vector<rel::Row>{rel::Row{w}};
  }
  if ((kind_ == ExtensionKind::kFull ||
       kind_ == ExtensionKind::kRightComplete) &&
      !degraded()) {
    return RightFragmentsFromAsr(w, p1);
  }
  return RightFragmentsFromStore(w, p1);
}

Result<std::vector<rel::Row>> AccessSupportRelation::LeftFragmentsFromAsr(
    Oid u, uint32_t p) {
  // Walk partitions right-to-left, extending fragments by the partition
  // slices that join at the current boundary column.
  std::vector<rel::Row> frags{rel::Row{AsrKey::FromOid(u)}};  // cover [c..p]
  uint32_t c = p;
  while (c > 0) {
    int p_idx = decomposition_.PartitionEndingAt(c);
    bool via_lookup = p_idx >= 0;
    if (!via_lookup) p_idx = decomposition_.PartitionCovering(c);
    const Partition& part = partitions_[p_idx];
    uint32_t f = part.first;
    std::vector<rel::Row> next;
    for (const rel::Row& frag : frags) {
      AsrKey v = frag.front();
      if (v.IsNull()) {
        // Already maximal: pad out to the new left boundary.
        next.push_back(Concat(Nulls(c - f), frag));
        continue;
      }
      Result<std::vector<rel::Row>> rows =
          PartitionRowsWithValue(static_cast<size_t>(p_idx), c, v);
      ASR_RETURN_IF_ERROR(rows.status());
      // Prefer slices that really extend v leftward over NULL-padded
      // dangler slices. In a private ASR the two never coexist for one
      // value; in a *shared* partition (§5.4) a dangler contributed by
      // another path may sit next to this path's real extensions and must
      // not fabricate a "maximal" fragment.
      bool extended = false;
      for (const rel::Row& row : *rows) {
        if (c - f >= 1 && row[c - f - 1].IsNull()) continue;  // dangler
        rel::Row prefix(row.begin(), row.begin() + (c - f));
        next.push_back(Concat(prefix, frag));
        extended = true;
      }
      if (!extended) {
        // No real extension: v's fragment is maximal here (or the slice is
        // missing entirely, e.g. the leftover of a longer left-complete
        // row); pad with NULLs.
        next.push_back(Concat(Nulls(c - f), frag));
      }
    }
    Dedup(&next);
    frags = std::move(next);
    c = f;
  }
  return frags;
}

Result<std::vector<rel::Row>> AccessSupportRelation::RightFragmentsFromAsr(
    AsrKey w, uint32_t p1) {
  const uint32_t n = path_.n();
  std::vector<rel::Row> frags{rel::Row{w}};  // cover [p1..c]
  uint32_t c = p1;
  while (c < n) {
    int p_idx = decomposition_.PartitionStartingAt(c);
    bool via_lookup = p_idx >= 0;
    if (!via_lookup) p_idx = decomposition_.PartitionCovering(c);
    const Partition& part = partitions_[p_idx];
    uint32_t l = part.last;
    std::vector<rel::Row> next;
    for (const rel::Row& frag : frags) {
      AsrKey v = frag.back();
      if (v.IsNull()) {
        next.push_back(Concat(frag, Nulls(l - c)));
        continue;
      }
      Result<std::vector<rel::Row>> rows =
          PartitionRowsWithValue(static_cast<size_t>(p_idx), c, v);
      ASR_RETURN_IF_ERROR(rows.status());
      // Mirror image of the dangler rule in LeftFragmentsFromAsr.
      bool extended = false;
      for (const rel::Row& row : *rows) {
        if (l - c >= 1 && row[row.size() - (l - c)].IsNull()) continue;
        rel::Row suffix(row.end() - (l - c), row.end());
        next.push_back(Concat(frag, suffix));
        extended = true;
      }
      if (!extended) {
        next.push_back(Concat(frag, Nulls(l - c)));
      }
    }
    Dedup(&next);
    frags = std::move(next);
    c = l;
  }
  return frags;
}

Result<std::vector<rel::Row>> AccessSupportRelation::LeftFragmentsFromStore(
    Oid u, uint32_t p) {
  // Backward breadth-first search over the object representation: one extent
  // scan of t_{q-1} per level (the exhaustive backward search the paper
  // charges canonical and right-complete extensions for, Eq. 36).
  const gom::Schema& schema = store_->schema();
  std::vector<std::unordered_set<AsrKey>> frontier(p + 1);
  // edges[q] maps a position-q key to its position-(q-1) predecessors.
  std::vector<std::unordered_map<AsrKey, std::vector<AsrKey>>> edges(p + 1);
  frontier[p].insert(AsrKey::FromOid(u));

  for (uint32_t q = p; q >= 1; --q) {
    const PathStep& step = path_.step(q);
    for (TypeId t = 0; t < schema.type_count(); ++t) {
      if (!schema.IsTuple(t) || !schema.IsSubtypeOf(t, step.domain_type)) {
        continue;
      }
      Status st = store_->ScanTuples(
          t, [&](const gom::TupleView& view) -> Status {
            Result<uint32_t> idx =
                schema.FindAttribute(view.oid.type_id(), step.attr_name);
            ASR_RETURN_IF_ERROR(idx.status());
            AsrKey value = view.attrs[*idx];
            if (value.IsNull()) return Status::OK();
            AsrKey self = AsrKey::FromOid(view.oid);
            if (!step.set_occurrence) {
              if (frontier[q].count(value) > 0) {
                edges[q][value].push_back(self);
                frontier[q - 1].insert(self);
              }
              return Status::OK();
            }
            Result<gom::SetView> set = store_->GetSet(value.ToOid());
            ASR_RETURN_IF_ERROR(set.status());
            for (AsrKey member : set->members) {
              if (frontier[q].count(member) > 0) {
                edges[q][member].push_back(self);
                frontier[q - 1].insert(self);
              }
            }
            return Status::OK();
          });
      ASR_RETURN_IF_ERROR(st);
    }
    if (frontier[q - 1].empty()) break;  // nothing reaches further left
  }

  // Assemble maximal fragments by depth-first expansion with per-level
  // memoization.
  std::vector<std::unordered_map<AsrKey, std::vector<rel::Row>>> memo(p + 1);
  std::function<const std::vector<rel::Row>&(AsrKey, uint32_t)> expand =
      [&](AsrKey x, uint32_t q) -> const std::vector<rel::Row>& {
    auto it = memo[q].find(x);
    if (it != memo[q].end()) return it->second;
    std::vector<rel::Row> out;
    if (q == 0) {
      out.push_back(rel::Row{x});
    } else {
      auto pit = edges[q].find(x);
      if (pit == edges[q].end() || pit->second.empty()) {
        out.push_back(Concat(Nulls(q), rel::Row{x}));
      } else {
        for (AsrKey pred : pit->second) {
          for (const rel::Row& f : expand(pred, q - 1)) {
            out.push_back(Concat(f, rel::Row{x}));
          }
        }
      }
    }
    Dedup(&out);
    return memo[q].emplace(x, std::move(out)).first->second;
  };
  return expand(AsrKey::FromOid(u), p);
}

Result<std::vector<rel::Row>> AccessSupportRelation::RightFragmentsFromStore(
    AsrKey w, uint32_t p1) {
  const uint32_t n = path_.n();
  const gom::Schema& schema = store_->schema();
  // Forward traversal: references are stored with the objects, so this is
  // the cheap direction (§6.1: "a forward search is cheaper than a backward
  // search").
  std::vector<std::unordered_map<AsrKey, std::vector<rel::Row>>> memo(n + 1);
  std::function<Result<std::vector<rel::Row>>(AsrKey, uint32_t)> expand =
      [&](AsrKey x, uint32_t q) -> Result<std::vector<rel::Row>> {
    auto it = memo[q].find(x);
    if (it != memo[q].end()) return it->second;
    std::vector<rel::Row> out;
    if (q == n || !x.IsOid()) {
      out.push_back(Concat(rel::Row{x}, Nulls(n - q)));
    } else {
      const PathStep& step = path_.step(q + 1);
      Result<uint32_t> idx =
          schema.FindAttribute(x.ToOid().type_id(), step.attr_name);
      ASR_RETURN_IF_ERROR(idx.status());
      Result<AsrKey> value = store_->GetAttribute(x.ToOid(), *idx);
      ASR_RETURN_IF_ERROR(value.status());
      std::vector<AsrKey> targets;
      if (!value->IsNull()) {
        if (step.set_occurrence) {
          Result<gom::SetView> set = store_->GetSet(value->ToOid());
          ASR_RETURN_IF_ERROR(set.status());
          targets = set->members;
        } else {
          targets.push_back(*value);
        }
      }
      if (targets.empty()) {
        out.push_back(Concat(rel::Row{x}, Nulls(n - q)));
      } else {
        for (AsrKey target : targets) {
          Result<std::vector<rel::Row>> sub = expand(target, q + 1);
          ASR_RETURN_IF_ERROR(sub.status());
          for (const rel::Row& f : *sub) {
            out.push_back(Concat(rel::Row{x}, f));
          }
        }
      }
    }
    Dedup(&out);
    memo[q].emplace(x, out);
    return out;
  };
  return expand(w, p1);
}

namespace {

bool LeftComplete(const rel::Row& frag) { return !frag.front().IsNull(); }
bool RightComplete(const rel::Row& frag) { return !frag.back().IsNull(); }

void Filter(std::vector<rel::Row>* rows, bool (*pred)(const rel::Row&)) {
  rows->erase(std::remove_if(rows->begin(), rows->end(),
                             [&](const rel::Row& r) { return !pred(r); }),
              rows->end());
}

}  // namespace

Status AccessSupportRelation::OnEdgeInserted(Oid u, uint32_t p, AsrKey w) {
  // Validate before logging intent: a rejected operation touches nothing
  // and must not dirty the journal.
  if (!options_.drop_set_columns) {
    return Status::NotSupported(
        "incremental maintenance requires drop_set_columns (rebuild instead)");
  }
  if (p >= path_.n()) {
    return Status::InvalidArgument("edge position out of range");
  }
  if (!store_->schema().IsSubtypeOf(u.type_id(), path_.type_at(p))) {
    return Status::TypeError("u is not an instance of t_" + std::to_string(p));
  }
  if (options_.transactional) {
    return RunEdgeTxn(MaintOp::kEdgeInsert, u, p, w);
  }
  // Journal envelope (§WAL discipline): intent precedes the first tree
  // write; commit requires every write to have reached the disk.
  const uint64_t seq = journal_.BeginEdge(MaintOp::kEdgeInsert, u, p, w);
  Status st = OnEdgeInsertedImpl(u, p, w);
  if (st.ok() && !AnyWriteError()) {
    journal_.Commit(seq);
    return st;
  }
  journal_.MarkLost(seq);
  if (st.ok()) {
    return Status::IOError(
        "ins_i writes were lost; ASR requires Recover()");
  }
  return st;
}

Status AccessSupportRelation::OnEdgeInsertedImpl(Oid u, uint32_t p, AsrKey w) {
  const uint32_t n = path_.n();
  maint_edge_inserts_.Inc();
  obs::ScopedSpan span("ins_i");
  if (span.active()) {
    span.Attr("position", static_cast<uint64_t>(p));
    span.Attr("extension", ExtensionKindName(kind_));
  }

  const bool need_left_complete = kind_ == ExtensionKind::kCanonical ||
                                  kind_ == ExtensionKind::kLeftComplete;
  const bool need_right_complete = kind_ == ExtensionKind::kCanonical ||
                                   kind_ == ExtensionKind::kRightComplete;

  // Compute the cheap (ASR-backed) side first and bail out early when it is
  // empty — the paper's ordering optimization in §6.1.
  std::vector<rel::Row> lefts;
  std::vector<rel::Row> rights;
  bool have_lefts = false;
  bool have_rights = false;

  if (kind_ == ExtensionKind::kLeftComplete) {
    obs::ScopedSpan frag("left_fragments");
    Result<std::vector<rel::Row>> l = LeftFragments(u, p);
    ASR_RETURN_IF_ERROR(l.status());
    lefts = std::move(*l);
    Filter(&lefts, LeftComplete);
    have_lefts = true;
    frag.Attr("fragments", static_cast<uint64_t>(lefts.size()));
    if (lefts.empty()) return Status::OK();  // u unreachable from t_0
  }
  if (kind_ == ExtensionKind::kRightComplete ||
      kind_ == ExtensionKind::kCanonical) {
    obs::ScopedSpan frag("right_fragments");
    Result<std::vector<rel::Row>> r = RightFragments(w, p + 1);
    ASR_RETURN_IF_ERROR(r.status());
    rights = std::move(*r);
    Filter(&rights, RightComplete);
    have_rights = true;
    frag.Attr("fragments", static_cast<uint64_t>(rights.size()));
    if (rights.empty()) return Status::OK();  // w does not reach t_n
  }

  if (!have_lefts) {
    obs::ScopedSpan frag("left_fragments");
    Result<std::vector<rel::Row>> l = LeftFragments(u, p);
    ASR_RETURN_IF_ERROR(l.status());
    lefts = std::move(*l);
    if (need_left_complete) Filter(&lefts, LeftComplete);
    frag.Attr("fragments", static_cast<uint64_t>(lefts.size()));
    if (lefts.empty()) return Status::OK();
  }
  if (!have_rights) {
    obs::ScopedSpan frag("right_fragments");
    Result<std::vector<rel::Row>> r = RightFragments(w, p + 1);
    ASR_RETURN_IF_ERROR(r.status());
    rights = std::move(*r);
    if (need_right_complete) Filter(&rights, RightComplete);
    frag.Attr("fragments", static_cast<uint64_t>(rights.size()));
    if (rights.empty()) return Status::OK();
  }

  // Install the new combined paths.
  {
    obs::ScopedSpan install("install_paths");
    install.Attr("rows", static_cast<uint64_t>(lefts.size() * rights.size()));
    for (const rel::Row& l : lefts) {
      for (const rel::Row& r : rights) {
        InsertRow(Concat(l, r));
      }
    }
  }

  // Retract dangling rows that the new edge completes.
  obs::ScopedSpan retract("retract_danglers");
  if (kind_ == ExtensionKind::kFull ||
      kind_ == ExtensionKind::kLeftComplete) {
    Result<std::vector<AsrKey>> out = OutEdges(u, p);
    ASR_RETURN_IF_ERROR(out.status());
    if (out->size() == 1 && (*out)[0] == w) {
      for (const rel::Row& l : lefts) {
        EraseRow(Concat(l, Nulls(n - p)));
      }
    }
  }
  if (kind_ == ExtensionKind::kFull ||
      kind_ == ExtensionKind::kRightComplete) {
    Result<bool> other = HasOtherInEdge(w, p + 1, u);
    ASR_RETURN_IF_ERROR(other.status());
    if (!*other) {
      for (const rel::Row& r : rights) {
        EraseRow(Concat(Nulls(p + 1), r));
      }
    }
  }
  return ParanoidValidate();
}

Status AccessSupportRelation::OnAttributeAssigned(Oid u, uint32_t p,
                                                  AsrKey old_value,
                                                  AsrKey new_value) {
  if (old_value == new_value) return Status::OK();
  // Install the new edge BEFORE retracting the old one: the removal erases
  // u's rows, and for extensions whose fragments are read from the ASR
  // (full, left-complete) the insertion needs u's left fragments to still be
  // discoverable there.
  if (!new_value.IsNull()) {
    ASR_RETURN_IF_ERROR(OnEdgeInserted(u, p, new_value));
  }
  if (!old_value.IsNull()) {
    ASR_RETURN_IF_ERROR(OnEdgeRemoved(u, p, old_value));
  }
  return Status::OK();
}

Status AccessSupportRelation::OnEdgeRemoved(Oid u, uint32_t p, AsrKey w) {
  if (!options_.drop_set_columns) {
    return Status::NotSupported(
        "incremental maintenance requires drop_set_columns (rebuild instead)");
  }
  if (p >= path_.n()) {
    return Status::InvalidArgument("edge position out of range");
  }
  if (!store_->schema().IsSubtypeOf(u.type_id(), path_.type_at(p))) {
    return Status::TypeError("u is not an instance of t_" + std::to_string(p));
  }
  if (options_.transactional) {
    return RunEdgeTxn(MaintOp::kEdgeRemove, u, p, w);
  }
  const uint64_t seq = journal_.BeginEdge(MaintOp::kEdgeRemove, u, p, w);
  Status st = OnEdgeRemovedImpl(u, p, w);
  if (st.ok() && !AnyWriteError()) {
    journal_.Commit(seq);
    return st;
  }
  journal_.MarkLost(seq);
  if (st.ok()) {
    return Status::IOError(
        "del_i writes were lost; ASR requires Recover()");
  }
  return st;
}

Status AccessSupportRelation::OnEdgeRemovedImpl(Oid u, uint32_t p, AsrKey w) {
  const uint32_t n = path_.n();
  maint_edge_removes_.Inc();
  obs::ScopedSpan span("rem_i");
  if (span.active()) {
    span.Attr("position", static_cast<uint64_t>(p));
    span.Attr("extension", ExtensionKindName(kind_));
  }

  const bool need_left_complete = kind_ == ExtensionKind::kCanonical ||
                                  kind_ == ExtensionKind::kLeftComplete;
  const bool need_right_complete = kind_ == ExtensionKind::kCanonical ||
                                   kind_ == ExtensionKind::kRightComplete;

  std::vector<rel::Row> lefts;
  {
    obs::ScopedSpan frag("left_fragments");
    Result<std::vector<rel::Row>> lres = LeftFragments(u, p);
    ASR_RETURN_IF_ERROR(lres.status());
    lefts = std::move(*lres);
    if (need_left_complete) Filter(&lefts, LeftComplete);
    frag.Attr("fragments", static_cast<uint64_t>(lefts.size()));
  }

  std::vector<rel::Row> rights;
  {
    obs::ScopedSpan frag("right_fragments");
    Result<std::vector<rel::Row>> rres = RightFragments(w, p + 1);
    ASR_RETURN_IF_ERROR(rres.status());
    rights = std::move(*rres);
    if (need_right_complete) Filter(&rights, RightComplete);
    frag.Attr("fragments", static_cast<uint64_t>(rights.size()));
  }

  // Retract the combined paths that ran over the removed edge.
  {
    obs::ScopedSpan retract("retract_paths");
    retract.Attr("rows", static_cast<uint64_t>(lefts.size() * rights.size()));
    for (const rel::Row& l : lefts) {
      for (const rel::Row& r : rights) {
        EraseRow(Concat(l, r));
      }
    }
  }

  obs::ScopedSpan reinstate("reinstate_danglers");
  // Reinstate dangling rows where the removed edge was the last one. A
  // dangling row only belongs in the extension when the object still occurs
  // in some auxiliary relation (Def. 3.3): an object whose attribute became
  // NULL and that has no other edges vanishes from the extension entirely,
  // whereas an *empty set* still contributes its (u, NULL) tuple.
  if (!lefts.empty() &&
      (kind_ == ExtensionKind::kFull ||
       kind_ == ExtensionKind::kLeftComplete)) {
    Result<std::vector<AsrKey>> out = OutEdges(u, p);
    ASR_RETURN_IF_ERROR(out.status());
    if (out->empty()) {
      Result<bool> defined = AttrDefined(AsrKey::FromOid(u), p);
      ASR_RETURN_IF_ERROR(defined.status());
      for (const rel::Row& l : lefts) {
        // Row (l, u, NULL...) exists iff u is in E_p (defined, empty set)
        // or l arrives over a real in-edge (u matched in E_{p-1}).
        bool legit = *defined || (p > 0 && !l[p - 1].IsNull());
        if (legit) InsertRow(Concat(l, Nulls(n - p)));
      }
    }
  }
  if (!rights.empty() &&
      (kind_ == ExtensionKind::kFull ||
       kind_ == ExtensionKind::kRightComplete)) {
    Result<bool> other = HasOtherInEdge(w, p + 1, Oid::Null());
    ASR_RETURN_IF_ERROR(other.status());
    if (!*other) {
      bool w_defined = false;
      if (p + 1 < n && w.IsOid()) {
        Result<bool> defined = AttrDefined(w, p + 1);
        ASR_RETURN_IF_ERROR(defined.status());
        w_defined = *defined;
      }
      for (const rel::Row& r : rights) {
        // Row (NULL..., w, r) exists iff w is in E_{p+1} (defined attribute,
        // possibly an empty set) or r leaves over a real out-edge.
        bool legit = w_defined || (r.size() >= 2 && !r[1].IsNull());
        if (legit) InsertRow(Concat(Nulls(p + 1), r));
      }
    }
  }
  return ParanoidValidate();
}

}  // namespace asr
