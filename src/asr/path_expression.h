// Path expressions t0.A1. ... .An over a GOM schema (Def. 3.1).
//
// A path expression is valid iff each A_i is an attribute of t_{i-1} whose
// range is either t_i directly (single-valued) or a set type t'_i = {t_i}
// (a "set occurrence" at A_i). The terminal range t_n may be atomic, in which
// case the last ASR column carries the attribute *value* (footnote 3).
//
// Column layout of the underlying access support relation (Def. 3.2): with k
// set occurrences the relation has arity m+1 = n+k+1; a set occurrence at A_i
// contributes a column for the set instance's OID followed by one for the
// member. Under the no-set-sharing simplification the set columns are dropped
// and m = n (§3, remark after Def. 3.8) — AsrOptions::drop_set_columns
// selects this, and it is the mode the paper's analytical examples use.
#ifndef ASR_ASR_PATH_EXPRESSION_H_
#define ASR_ASR_PATH_EXPRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gom/type_system.h"

namespace asr {

// One attribute hop A_i of a path.
struct PathStep {
  std::string attr_name;
  uint32_t attr_index = 0;           // index in attributes(domain_type)
  TypeId domain_type = kInvalidTypeId;   // t_{i-1}
  TypeId range_type = kInvalidTypeId;    // t_i (element type if set occurrence)
  bool set_occurrence = false;
  TypeId set_type = kInvalidTypeId;      // t'_i when set_occurrence
};

class PathExpression {
 public:
  // Resolves and validates "A1.A2. ... .An" against `anchor` (t0).
  static Result<PathExpression> Create(const gom::Schema& schema,
                                       TypeId anchor,
                                       const std::vector<std::string>& attrs);

  // Convenience: parses a dotted string "Manufactures.Composition.Name".
  static Result<PathExpression> Parse(const gom::Schema& schema,
                                      TypeId anchor,
                                      const std::string& dotted);

  const gom::Schema& schema() const { return *schema_; }
  TypeId anchor() const { return anchor_; }

  // Path length n.
  uint32_t n() const { return static_cast<uint32_t>(steps_.size()); }
  // Number of set occurrences k.
  uint32_t k() const { return k_; }
  // Highest column index with set columns retained: m = n + k (Def. 3.2).
  uint32_t m() const { return n() + k_; }

  const std::vector<PathStep>& steps() const { return steps_; }
  const PathStep& step(uint32_t i) const {
    ASR_DCHECK(i >= 1 && i <= n());
    return steps_[i - 1];
  }

  // Type at position i (t_i); t_0 = anchor. Positions run 0..n.
  TypeId type_at(uint32_t pos) const;

  // True when t_n is an atomic type (terminal column holds values).
  bool terminal_is_atomic() const;

  // Column index of position i in the ASR with set columns retained:
  // col(0)=0; a set occurrence at A_i inserts one extra column before t_i.
  uint32_t ColumnOfPosition(uint32_t pos) const {
    ASR_DCHECK(pos <= n());
    return col_of_pos_[pos];
  }

  // "t0.A1.....An" rendering.
  std::string ToString() const;

 private:
  PathExpression(const gom::Schema* schema, TypeId anchor,
                 std::vector<PathStep> steps);

  const gom::Schema* schema_;
  TypeId anchor_;
  std::vector<PathStep> steps_;
  uint32_t k_ = 0;
  std::vector<uint32_t> col_of_pos_;
};

}  // namespace asr

#endif  // ASR_ASR_PATH_EXPRESSION_H_
