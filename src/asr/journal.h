// Maintenance intent journal: crash-consistency bookkeeping for ins_i/del_i.
//
// Every incremental maintenance operation (§6) and rebuild logs its intent
// here BEFORE touching the partition B+ trees and commits it after the last
// tree update was durably written. The journal is the write-ahead half of
// the recovery protocol:
//
//   pending    intent logged, tree updates possibly half-applied
//   committed  every tree write of the operation reached the disk
//   lost       the operation's write-back failed (simulated crash): its tree
//              updates are partially or wholly gone
//   recovered  a pending/lost entry resolved by Recover() re-deriving the
//              affected partitions from the object base
//
// After a crash, a clean journal (no pending/lost entries) plus passing
// physical triage means the ASR state on disk is exactly the committed
// prefix — the fast path. Any unresolved entry forces re-derivation: the
// object base is updated before maintenance runs, so the base is always
// authoritative and "replay" and "roll back" coincide in recomputing the
// extension from it (the redundancy argument of Defs. 3.3-3.8).
//
// The in-memory deque is the working state; persistence is optional and
// layered: AttachWal() hooks a storage::WriteAheadLog so every intent,
// commit, lost and recovered transition is also appended as a CRC-framed
// record, with fdatasync at the commit points (commit, lost, recovered —
// the transitions recovery decisions hang off; the intent append itself
// rides to the platter with the next commit's sync, which is safe because
// the object base is authoritative and an unlogged intent just means the op
// never happened). After a real process death the records are replayed
// through ApplyWalRecord() to reconstruct the pre-crash journal — a
// trailing intent with no commit resurfaces as pending and forces
// Recover(). Without an attached WAL the journal behaves exactly as before:
// the protocol drill on the simulated-fault matrix needs no file.
#ifndef ASR_ASR_JOURNAL_H_
#define ASR_ASR_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

#include "common/asr_key.h"
#include "common/macros.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/wal.h"

namespace asr {

enum class MaintOp {
  kEdgeInsert,
  kEdgeRemove,
  kRebuild,
};

const char* MaintOpName(MaintOp op);

enum class JournalState {
  kPending,
  kCommitted,
  kLost,
  kRecovered,
  // Resolved with no effect: a transactional attempt lost every conflict
  // retry and rolled back cleanly. Unlike kLost, nothing on disk is in
  // doubt, so an aborted entry carries no recovery obligation.
  kAborted,
};

const char* JournalStateName(JournalState state);

struct JournalEntry {
  uint64_t seq = 0;
  MaintOp op = MaintOp::kEdgeInsert;
  // Edge operations: u at path position p gains/loses the edge to w.
  Oid u;
  uint32_t p = 0;
  AsrKey w;
  JournalState state = JournalState::kPending;
};

class MaintenanceJournal {
 public:
  // Retained resolved-entry history; older resolved entries are truncated
  // (an unresolved entry is never dropped).
  static constexpr size_t kMaxResolved = 256;

  // Logs an intent; returns its sequence number.
  uint64_t BeginEdge(MaintOp op, Oid u, uint32_t p, AsrKey w);
  uint64_t BeginRebuild();

  // Resolution of the entry `seq` (must be pending).
  void Commit(uint64_t seq);
  void MarkLost(uint64_t seq);
  // Clean no-effect resolution: the operation aborted (transactional
  // conflict) with every staged write discarded — the disk never saw it, so
  // recovery owes it nothing.
  void MarkAborted(uint64_t seq);

  // Recover() resolved every outstanding intent by re-deriving from the
  // object base; returns how many entries it covered.
  uint64_t MarkAllRecovered();

  // --- Persistence (optional) --------------------------------------------
  // Attaches `wal` (borrowed; nullptr detaches): every subsequent
  // transition is appended as a record, with fdatasync at commit points.
  // Setup-time call; attach before maintenance threads start.
  void AttachWal(storage::WriteAheadLog* wal) { wal_ = wal; }
  storage::WriteAheadLog* wal() const { return wal_; }

  // Stream id for multi-journal WALs: several ASRs (one journal each, e.g.
  // one per writer) can share one log file when each journal tags its
  // records with a distinct nonzero stream. Stream 0 — the default — writes
  // the exact legacy record format, byte-identical to a single-journal log;
  // a nonzero stream appends one trailing id byte to every record, and
  // ApplyWalRecord() accepts only records of its own stream (foreign streams
  // report false so the sibling journal can claim them). Setup-time call,
  // like AttachWal.
  void SetWalStream(uint8_t stream) { stream_ = stream; }
  uint8_t wal_stream() const { return stream_; }

  // Applies one record replayed from a WAL to reconstruct pre-crash state
  // (never appends). Returns true when the payload was a journal record;
  // false lets callers route foreign record types (e.g. an application's
  // own redo records sharing the log) to their own handlers.
  bool ApplyWalRecord(std::string_view payload);

  // First WAL append/sync failure since attach (sticky). The in-memory
  // protocol proceeds regardless — a lost log entry is recovered from the
  // authoritative base like a lost page write.
  Status wal_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wal_error_;
  }

  // Entries still pending or lost — the dirty signal for recovery.
  uint64_t unresolved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_ + lost_;
  }
  uint64_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
  }
  uint64_t lost() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lost_;
  }
  uint64_t committed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return committed_;
  }
  uint64_t aborted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return aborted_;
  }
  uint64_t recovered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recovered_;
  }
  uint64_t next_seq() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seq_;
  }

  // Snapshot copy: the deque mutates under concurrent maintenance, so
  // callers get a stable view instead of a reference into guarded state.
  std::deque<JournalEntry> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }

  std::string ToString() const;
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  JournalEntry* Find(uint64_t seq) ASR_REQUIRES(mu_);
  uint64_t Append(JournalEntry entry) ASR_REQUIRES(mu_);
  void TruncateResolved() ASR_REQUIRES(mu_);
  // Appends `record` to the attached WAL (no-op when detached), tagging it
  // with the stream byte when this journal writes a nonzero stream; `sync`
  // adds the fdatasync commit point. Failures stick in wal_error_. Lock
  // order: the journal lock is held across the WAL call (journal -> wal,
  // never the reverse).
  void AppendWal(std::string record, bool sync) ASR_REQUIRES(mu_);

  // One lock for the whole protocol state: intent, resolution, and the WAL
  // append are a single atomic transition — the precondition for the
  // ROADMAP's multi-writer ASR maintenance.
  mutable std::mutex mu_;
  std::deque<JournalEntry> entries_ ASR_GUARDED_BY(mu_);
  uint64_t next_seq_ ASR_GUARDED_BY(mu_) = 1;
  uint64_t pending_ ASR_GUARDED_BY(mu_) = 0;
  uint64_t lost_ ASR_GUARDED_BY(mu_) = 0;
  uint64_t committed_ ASR_GUARDED_BY(mu_) = 0;
  uint64_t recovered_ ASR_GUARDED_BY(mu_) = 0;
  uint64_t aborted_ ASR_GUARDED_BY(mu_) = 0;
  storage::WriteAheadLog* wal_ = nullptr;  // set at attach time, then stable
  uint8_t stream_ = 0;                     // set at attach time, then stable
  Status wal_error_ ASR_GUARDED_BY(mu_);
};

}  // namespace asr

#endif  // ASR_ASR_JOURNAL_H_
