// Decompositions of an (m+1)-ary access support relation (Def. 3.8).
//
// A decomposition (0, i_1, ..., i_k, m) splits the relation into partitions
// [S_0..S_{i_1}], [S_{i_1}..S_{i_2}], ..., [S_{i_k}..S_m]; adjacent partitions
// overlap in the boundary column, which is what makes every decomposition
// lossless (Theorem 3.9). The two distinguished cases are *no decomposition*
// (0, m) and the *binary* decomposition (0, 1, ..., m).
#ifndef ASR_ASR_DECOMPOSITION_H_
#define ASR_ASR_DECOMPOSITION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace asr {

class Decomposition {
 public:
  // (0, m): the relation is kept in one piece.
  static Decomposition None(uint32_t m);

  // (0, 1, ..., m): all partitions binary.
  static Decomposition Binary(uint32_t m);

  // Validates 0 = cuts[0] < cuts[1] < ... < cuts[last] = m.
  static Result<Decomposition> Of(std::vector<uint32_t> cuts, uint32_t m);

  // All 2^(m-1) decompositions of an (m+1)-ary relation (each interior
  // boundary 1..m-1 is either cut or not). Intended for the design advisor;
  // m must be modest.
  static std::vector<Decomposition> EnumerateAll(uint32_t m);

  const std::vector<uint32_t>& cuts() const { return cuts_; }
  uint32_t m() const { return cuts_.back(); }
  size_t partition_count() const { return cuts_.size() - 1; }

  // Column range [first, last] of partition `idx`.
  std::pair<uint32_t, uint32_t> partition(size_t idx) const {
    ASR_DCHECK(idx + 1 < cuts_.size());
    return {cuts_[idx], cuts_[idx + 1]};
  }

  bool IsBoundary(uint32_t col) const;

  // Index of the partition whose range begins at `col`, or -1.
  int PartitionStartingAt(uint32_t col) const;
  // Index of the partition whose range ends at `col`, or -1.
  int PartitionEndingAt(uint32_t col) const;
  // Index of the leftmost partition whose range contains `col`.
  int PartitionCovering(uint32_t col) const;

  bool operator==(const Decomposition& other) const {
    return cuts_ == other.cuts_;
  }

  // "(0,1,3,5)"
  std::string ToString() const;

 private:
  explicit Decomposition(std::vector<uint32_t> cuts)
      : cuts_(std::move(cuts)) {}

  std::vector<uint32_t> cuts_;
};

}  // namespace asr

#endif  // ASR_ASR_DECOMPOSITION_H_
