// Transactional edge maintenance: the multi-writer counterpart of the
// journal-enveloped single-writer path in maintenance.cc.
//
// One operation = claim the partition stores it spans (try-lock, address
// order), run the ordinary ins_i/del_i implementation with every tree write
// staged in a storage::PageTransaction, flush the staged pages and commit
// them as one epoch. Two rollback mechanisms pair up on failure: staged page
// images are dropped and each tree's Meta is restored (the physical side),
// and the undo log reverses the in-memory full_rows_/refcount edits (the
// logical side). A failed claim or a commit-time conflict surfaces as
// Aborted; RunEdgeTxn backs off and retries against the new epoch.
//
// The claim protocol is the ASR-level conflict surface: writers over
// disjoint partition stores never contend, writers sharing a store
// serialize, and the storage layer's first-committer-wins check is the
// safety net underneath. Try-lockers release everything on failure (no
// hold-and-wait), so the blocking lockers — snapshot capture and Rebuild,
// both taking claims in the same address order — cannot deadlock with them.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "asr/access_support_relation.h"
#include "btree/btree.h"
#include "obs/latency.h"
#include "obs/span.h"
#include "storage/mvcc.h"

namespace asr {

namespace {

// Deterministic per-thread jittered exponential backoff. No clock reads
// (this is a metering path): the jitter seed is the thread id hashed through
// an LCG step, varied per attempt.
uint32_t BackoffMicros(uint32_t base_us, uint32_t attempt) {
  const uint64_t seed =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) ^
      (static_cast<uint64_t>(attempt) * 0x9E3779B97F4A7C15ull);
  const uint64_t mixed = seed * 6364136223846793005ull + 1442695040888963407ull;
  const uint32_t cap = base_us << std::min<uint32_t>(attempt, 10);
  if (cap == 0) return 0;
  return static_cast<uint32_t>(mixed % cap) + 1;
}

uint32_t EnvU32(const char* name, uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
}

}  // namespace

AsrOptions AsrOptions::FromEnv() {
  AsrOptions options;
  options.txn_max_retries = EnvU32("ASR_TXN_RETRIES", options.txn_max_retries);
  options.txn_backoff_us =
      EnvU32("ASR_TXN_BACKOFF_US", options.txn_backoff_us);
  return options;
}

storage::MvccManager* AccessSupportRelation::mvcc() const {
  return store_->buffers()->disk()->mvcc();
}

std::vector<PartitionStore*> AccessSupportRelation::DistinctStores() const {
  std::vector<PartitionStore*> stores;
  stores.reserve(partitions_.size());
  for (const Partition& part : partitions_) {
    stores.push_back(part.store.get());
  }
  std::sort(stores.begin(), stores.end());
  stores.erase(std::unique(stores.begin(), stores.end()), stores.end());
  return stores;
}

Status AccessSupportRelation::RegisterTreeSegments() {
  storage::MvccManager* manager = mvcc();
  if (manager == nullptr) {
    return Status::NotSupported(
        "AsrOptions::transactional requires an MvccManager on the disk "
        "(Database::EnableMvcc)");
  }
  for (PartitionStore* ps : DistinctStores()) {
    // Push every buffered build/rebuild page to the backend first: once the
    // segment is registered, snapshot readers resolve its pages from the
    // backend image, which must therefore be complete at registration.
    ASR_RETURN_IF_ERROR(ps->buffers->FlushAll());
  }
  for (const Partition& part : partitions_) {
    manager->RegisterSegment(part.store->forward->segment());
    manager->RegisterSegment(part.store->backward->segment());
  }
  return Status::OK();
}

Status AccessSupportRelation::AttemptEdgeTxn(MaintOp op, Oid u, uint32_t p,
                                             AsrKey w) {
  // Every edge operation may touch every partition (fragments span the whole
  // path), so claim all distinct stores. Address order + try-lock keeps the
  // claim deadlock-free; failure means a concurrent writer shares a store.
  std::vector<PartitionStore*> stores = DistinctStores();
  std::vector<std::unique_lock<std::mutex>> claims;
  claims.reserve(stores.size());
  for (PartitionStore* ps : stores) {
    std::unique_lock<std::mutex> claim(ps->claim_mu, std::try_to_lock);
    if (!claim.owns_lock()) {
      return Status::Aborted("partition store '" + ps->name +
                             "' claimed by a concurrent writer");
    }
    claims.push_back(std::move(claim));
  }

  // Physical rollback points: each tree's in-memory state now, paired with
  // the discard of its staged pages.
  struct TreeMark {
    PartitionStore* store;
    btree::BTree::Meta fwd;
    btree::BTree::Meta bwd;
  };
  std::vector<TreeMark> marks;
  marks.reserve(stores.size());
  std::vector<uint32_t> segments;
  segments.reserve(stores.size() * 2);
  for (PartitionStore* ps : stores) {
    marks.push_back({ps, ps->forward->meta(), ps->backward->meta()});
    segments.push_back(ps->forward->segment());
    segments.push_back(ps->backward->segment());
  }

  undo_log_.clear();
  undo_active_ = true;
  Status st;
  {
    storage::PageTransaction txn(mvcc(), std::move(segments));
    st = op == MaintOp::kEdgeInsert ? OnEdgeInsertedImpl(u, p, w)
                                    : OnEdgeRemovedImpl(u, p, w);
    if (st.ok()) {
      // Push every dirty tree page into the transaction's staged set (the
      // pools write through Disk::WritePage, which routes to the thread's
      // transaction), then commit them as one epoch.
      for (PartitionStore* ps : stores) {
        Status flushed = ps->buffers->FlushAll();
        if (!flushed.ok()) st = flushed;
      }
      if (st.ok()) st = txn.Commit();
    }
    if (!st.ok()) {
      txn.Abort();
      for (const TreeMark& mark : marks) {
        // The pools may cache staged images that never committed; they are
        // not valid reads after the abort.
        mark.store->buffers->DropAll();
        mark.store->forward->RestoreMeta(mark.fwd);
        mark.store->backward->RestoreMeta(mark.bwd);
      }
      for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
        (*it)();
      }
    }
  }
  undo_active_ = false;
  undo_log_.clear();
  return st;
}

Status AccessSupportRelation::RunEdgeTxn(MaintOp op, Oid u, uint32_t p,
                                         AsrKey w) {
  if (mvcc() == nullptr) {
    return Status::NotSupported(
        "AsrOptions::transactional requires an MvccManager on the disk "
        "(Database::EnableMvcc)");
  }
  obs::ScopedSpan span(op == MaintOp::kEdgeInsert ? "ins_i_txn" : "del_i_txn");
  // Journal intent once: retries are one logical operation, and a crash in
  // any attempt leaves the same unresolved intent for Recover().
  const uint64_t seq = journal_.BeginEdge(op, u, p, w);
  Status st;
  uint32_t attempt = 0;
  for (;; ++attempt) {
    st = AttemptEdgeTxn(op, u, p, w);
    if (!st.IsAborted()) break;
    if (attempt + 1 >= options_.txn_max_retries) break;
    const uint32_t sleep_us = BackoffMicros(options_.txn_backoff_us, attempt);
    if (sleep_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
  }
  obs::LiveTelemetry::Instance().txn_retries.Observe(attempt);
  if (span.active()) span.Attr("retries", static_cast<uint64_t>(attempt));
  if (st.ok() && !AnyWriteError()) {
    journal_.Commit(seq);
    return st;
  }
  if (st.IsAborted()) {
    // Every retry lost its conflict and rolled back cleanly: the disk never
    // saw the operation, so the intent resolves with no recovery debt. The
    // caller decides whether to re-issue the operation.
    journal_.MarkAborted(seq);
    return st;
  }
  journal_.MarkLost(seq);
  if (st.ok()) {
    return Status::IOError(
        "transactional maintenance writes were lost; ASR requires Recover()");
  }
  return st;
}

}  // namespace asr
