// Consistent-epoch ASR readers: query a transactional ASR while maintenance
// is mid-flight, without locks on the query path.
//
// An AsrSnapshot is the ASR-level face of a storage::PageSnapshot: capture
// pins the current committed page-version epoch and copies each partition
// tree's in-memory Meta; queries then run the ordinary hop loop over trees
// attached to a read-only snapshot-mode buffer pool, so every page resolves
// to its image as of the pinned epoch — retained old versions where a later
// commit has since overwritten the backend. Writers never block the reader
// and the reader never blocks writers; the copy-on-write retention in
// storage/mvcc.h is the isolation mechanism.
//
// The alternative — evaluating queries against the live trees concurrently
// with maintenance — is unsound regardless of page versioning: a writer
// mutates the live BTree objects' in-memory state (root, height, counts)
// mid-descent. Snapshots sidestep that by attaching private BTree instances
// to the captured Metas.
//
// Capture takes every partition claim briefly (blocking, address order), so
// a snapshot never lands in the middle of an edge operation or rebuild:
// what it sees is exactly a committed prefix of the maintenance history.
#ifndef ASR_ASR_SNAPSHOT_H_
#define ASR_ASR_SNAPSHOT_H_

#include <memory>
#include <vector>

#include "btree/btree.h"
#include "common/asr_key.h"
#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/mvcc.h"

namespace asr {

class AccessSupportRelation;

class AsrSnapshot {
 public:
  ASR_DISALLOW_COPY_AND_ASSIGN(AsrSnapshot);

  // The committed epoch this snapshot reads at.
  storage::MvccEpoch epoch() const { return snap_.epoch(); }

  // Supported queries against the captured state: same contract and same
  // answers as the live EvalForward/EvalBackward at capture time, minus the
  // degraded-navigation path (capture requires a non-degraded ASR) and the
  // live telemetry. The source ASR must outlive the snapshot.
  Result<std::vector<AsrKey>> EvalForward(AsrKey start, uint32_t i,
                                          uint32_t j);
  Result<std::vector<AsrKey>> EvalBackward(AsrKey target, uint32_t i,
                                           uint32_t j);

 private:
  friend class AccessSupportRelation;

  struct SnapPartition {
    uint32_t first = 0;
    uint32_t last = 0;
    std::unique_ptr<btree::BTree> forward;
    std::unique_ptr<btree::BTree> backward;
  };

  explicit AsrSnapshot(const AccessSupportRelation* asr) : asr_(asr) {}

  // Immutable-after-Build configuration (path, kind, decomposition) is read
  // through the source ASR; everything that mutates is captured below.
  const AccessSupportRelation* asr_;
  // Declaration order is the teardown contract reversed: partitions_ (trees)
  // pin through pool_, and pool_ reads through snap_.
  storage::PageSnapshot snap_;
  std::unique_ptr<storage::BufferManager> pool_;
  std::vector<SnapPartition> partitions_;
};

}  // namespace asr

#endif  // ASR_ASR_SNAPSHOT_H_
