// Crash recovery, quarantine, and degrade-to-navigation for ASRs.
//
// The paper's redundancy argument (Defs. 3.3-3.8, Thm 3.9) is that an ASR
// adds no information to the object base — every partition is a projection
// of an extension derivable from the base alone. Recovery leans on exactly
// that: after a simulated crash, partitions are triaged physically
// (checksums, tree structure, forward/backward agreement); if anything is
// unresolved or damaged, the extension is recomputed from the base — the
// base is updated BEFORE maintenance runs, so it is authoritative and
// replaying pending intents and rolling back half-applied ones coincide.
// Healthy trees are patched by slice diff; damaged ones are quarantined and
// their path slice answered by object-base navigation (correct answers,
// navigation page counts) until Repair() bulk-rebuilds them.
#include <algorithm>
#include <unordered_map>
#include <utility>

#include "asr/access_support_relation.h"
#include "obs/events.h"
#include "obs/span.h"

namespace asr {

std::string RecoveryReport::ToString() const {
  std::string out = "recovery: ";
  out += clean ? "clean" : "dirty";
  out += " checked=" + std::to_string(partitions_checked);
  out += " quarantined=" + std::to_string(partitions_quarantined);
  out += " reconciled=" + std::to_string(partitions_reconciled);
  out += " repaired=" + std::to_string(partitions_repaired);
  out += " journal_resolved=" + std::to_string(journal_resolved);
  out += " rows_recomputed=" + std::to_string(rows_recomputed);
  out += " slices(+" + std::to_string(slices_inserted) + "/-" +
         std::to_string(slices_erased) + ")";
  return out;
}

Status PartitionStore::RebuildTrees(double fill_factor) {
  std::vector<rel::Row> slices;
  slices.reserve(refcounts.size());
  for (const auto& [slice, count] : refcounts) slices.push_back(slice);
  forward = std::make_unique<btree::BTree>(buffers, name + ":fwd", width, 0);
  backward =
      std::make_unique<btree::BTree>(buffers, name + ":bwd", width, width - 1);
  ASR_RETURN_IF_ERROR(forward->BulkLoad(slices, fill_factor));
  ASR_RETURN_IF_ERROR(backward->BulkLoad(std::move(slices), fill_factor));
  quarantined = false;
  return Status::OK();
}

bool AccessSupportRelation::degraded() const {
  return quarantined_count() > 0;
}

size_t AccessSupportRelation::quarantined_count() const {
  size_t count = 0;
  for (const Partition& part : partitions_) {
    if (part.store->quarantined) ++count;
  }
  return count;
}

bool AccessSupportRelation::AnyWriteError() const {
  if (store_->buffers()->has_write_error()) return true;
  for (const Partition& part : partitions_) {
    if (part.store->private_buffers != nullptr &&
        part.store->private_buffers->has_write_error()) {
      return true;
    }
  }
  return false;
}

Status AccessSupportRelation::TriagePartitionStore(PartitionStore* store) {
  storage::Disk* disk = store->buffers->disk();
  // Checksums first: a torn page must be caught before any tree walk pins
  // it (Pin on a checksum-failing page aborts by contract).
  ASR_RETURN_IF_ERROR(disk->VerifySegment(store->forward->segment()));
  ASR_RETURN_IF_ERROR(disk->VerifySegment(store->backward->segment()));
  ASR_RETURN_IF_ERROR(store->forward->CheckIntegrity());
  ASR_RETURN_IF_ERROR(store->backward->CheckIntegrity());
  if (store->forward->tuple_count() != store->backward->tuple_count()) {
    return Status::Corruption(
        store->name + ": forward tree holds " +
        std::to_string(store->forward->tuple_count()) + " tuples, backward " +
        std::to_string(store->backward->tuple_count()));
  }
  // Lost writes keep old content with a valid checksum, so cross-structure
  // agreement is the check that actually catches them (§5.2 redundancy).
  std::set<rel::Row> fwd_rows;
  std::set<rel::Row> bwd_rows;
  ASR_RETURN_IF_ERROR(
      store->forward->ScanAll([&](const rel::Row& row) -> Status {
        fwd_rows.insert(row);
        return Status::OK();
      }));
  ASR_RETURN_IF_ERROR(
      store->backward->ScanAll([&](const rel::Row& row) -> Status {
        bwd_rows.insert(row);
        return Status::OK();
      }));
  if (fwd_rows != bwd_rows) {
    return Status::Corruption(store->name +
                              ": forward and backward trees disagree");
  }
  return Status::OK();
}

namespace {

bool SliceAllNull(const rel::Row& slice) {
  for (AsrKey k : slice) {
    if (!k.IsNull()) return false;
  }
  return true;
}

// This ASR's contribution to a [first..last] partition store: every
// projected slice with its multiplicity over `rows`.
std::map<rel::Row, uint32_t> ProjectContribution(const std::set<rel::Row>& rows,
                                                 uint32_t first,
                                                 uint32_t last) {
  std::map<rel::Row, uint32_t> contrib;
  for (const rel::Row& row : rows) {
    rel::Row slice(row.begin() + first, row.begin() + last + 1);
    if (SliceAllNull(slice)) continue;
    ++contrib[std::move(slice)];
  }
  return contrib;
}

// Makes `tree` hold exactly the keys of `refcounts` (healthy-tree patch-up;
// every insert/erase is a normal metered descent).
Status ReconcileTree(btree::BTree* tree,
                     const std::map<rel::Row, uint32_t>& refcounts,
                     uint64_t* inserted, uint64_t* erased) {
  std::set<rel::Row> stored;
  ASR_RETURN_IF_ERROR(tree->ScanAll([&](const rel::Row& row) -> Status {
    stored.insert(row);
    return Status::OK();
  }));
  for (const rel::Row& row : stored) {
    if (refcounts.find(row) == refcounts.end()) {
      tree->Erase(row);
      ++*erased;
    }
  }
  for (const auto& [slice, count] : refcounts) {
    if (stored.find(slice) == stored.end()) {
      tree->Insert(slice);
      ++*inserted;
    }
  }
  return Status::OK();
}

}  // namespace

Status AccessSupportRelation::Recover(RecoveryReport* report_out) {
  RecoveryReport scratch;
  RecoveryReport& report = report_out != nullptr ? *report_out : scratch;
  report = RecoveryReport{};
  recoveries_.Inc();
  obs::ScopedSpan span("recover");
  ASR_EVENT(obs::EventKind::kRecoveryStart,
            "unresolved=" + std::to_string(journal_.unresolved()) +
                " partitions=" + std::to_string(partitions_.size()));

  // Restart point: torn sectors become visible, the injector disarms, and
  // every cached frame — RAM that did not survive the crash — is dropped
  // (which also clears the pools' sticky write errors).
  store_->buffers()->disk()->RecoverFromCrash();
  store_->buffers()->DropAll();
  for (Partition& part : partitions_) {
    if (part.store->private_buffers != nullptr) {
      part.store->private_buffers->DropAll();
    }
  }

  // Physical triage.
  bool any_damage = false;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    Partition& part = partitions_[p];
    ++report.partitions_checked;
    Status st = TriagePartitionStore(part.store.get());
    part.store->quarantined = !st.ok();
    if (part.store->quarantined) {
      ++report.partitions_quarantined;
      any_damage = true;
      ASR_EVENT(obs::EventKind::kPartitionQuarantine,
                "partition=" + std::to_string(p) +
                    " phase=triage reason=" + st.message());
    }
  }

  if (journal_.unresolved() == 0 && !any_damage) {
    report.clean = true;
    if (span.active()) span.Attr("clean", uint64_t{1});
    ASR_EVENT(obs::EventKind::kRecoveryFinish, "clean=1");
    return ParanoidValidate();
  }

  // Dirty path: re-derive the extension from the object base.
  Result<rel::Relation> extension =
      ComputeExtension(store_, path_, kind_, options_.drop_set_columns,
                       options_.anchor_collection);
  ASR_RETURN_IF_ERROR(extension.status());
  report.rows_recomputed = extension->rows().size();
  std::set<rel::Row> old_rows;
  old_rows.swap(full_rows_);
  for (const rel::Row& row : extension->rows()) full_rows_.insert(row);

  for (size_t p = 0; p < partitions_.size(); ++p) {
    Partition& part = partitions_[p];
    std::map<rel::Row, uint32_t> fresh =
        ProjectContribution(full_rows_, part.first, part.last);
    if (part.store->owners <= 1) {
      part.store->refcounts = std::move(fresh);
    } else {
      // Shared store (§5.4): swap this ASR's contribution, leave sibling
      // slices and counts untouched. The refcounts live in memory and
      // survived the page-write crash together with full_rows_, so the old
      // contribution is exactly the projection of the old row set.
      std::map<rel::Row, uint32_t> stale =
          ProjectContribution(old_rows, part.first, part.last);
      for (const auto& [slice, count] : stale) {
        auto it = part.store->refcounts.find(slice);
        if (it == part.store->refcounts.end()) continue;
        if (it->second <= count) {
          part.store->refcounts.erase(it);
        } else {
          it->second -= count;
        }
      }
      for (const auto& [slice, count] : fresh) {
        part.store->refcounts[slice] += count;
      }
    }
    if (part.store->quarantined) continue;  // Repair() rebuilds the trees
    uint64_t inserted = 0;
    uint64_t erased = 0;
    Status st = ReconcileTree(part.store->forward.get(),
                              part.store->refcounts, &inserted, &erased);
    if (st.ok()) {
      st = ReconcileTree(part.store->backward.get(), part.store->refcounts,
                         &inserted, &erased);
    }
    // ReconcileTree "succeeds" even when its tree writes never reach the
    // disk — eviction failures park in the pool's sticky error (the pool was
    // drained by DropAll above, so anything there now came from reconcile).
    if (st.ok() && part.store->buffers->has_write_error()) {
      st = part.store->buffers->write_error();
    }
    if (!st.ok()) {
      // The reconcile could not be persisted (e.g. the backend demoted
      // itself to read-only after a permanent write failure): the trees are
      // untrusted, so quarantine the partition and let degraded navigation
      // answer its slice. Recovery itself still completes.
      part.store->quarantined = true;
      ++report.partitions_quarantined;
      ASR_EVENT(obs::EventKind::kPartitionQuarantine,
                "partition=" + std::to_string(p) +
                    " phase=reconcile reason=" + st.message());
      continue;
    }
    if (inserted + erased > 0) ++report.partitions_reconciled;
    report.slices_inserted += inserted;
    report.slices_erased += erased;
  }

  report.journal_resolved = journal_.MarkAllRecovered();
  ASR_EVENT(obs::EventKind::kRecoveryFinish,
            "clean=0 quarantined=" +
                std::to_string(report.partitions_quarantined) +
                " rows_recomputed=" + std::to_string(report.rows_recomputed) +
                " journal_resolved=" +
                std::to_string(report.journal_resolved));
  if (span.active()) {
    span.Attr("quarantined", static_cast<uint64_t>(
                                 report.partitions_quarantined));
    span.Attr("rows_recomputed", report.rows_recomputed);
    span.Attr("journal_resolved", report.journal_resolved);
  }
  return ValidateStructure();
}

Status AccessSupportRelation::Repair(RecoveryReport* report_out) {
  RecoveryReport scratch;
  RecoveryReport& report = report_out != nullptr ? *report_out : scratch;
  obs::ScopedSpan span("repair");
  uint32_t repaired = 0;
  for (Partition& part : partitions_) {
    if (!part.store->quarantined) continue;
    repairs_.Inc();
    Status st = part.store->RebuildTrees(options_.fill_factor);
    if (st.ok() && part.store->buffers->has_write_error()) {
      st = part.store->buffers->write_error();
    }
    if (!st.ok()) {
      // Repair needs a writable backend; keep the store quarantined (its
      // slice still answers via navigation) and surface why.
      part.store->quarantined = true;
      return st;
    }
    ++repaired;
  }
  report.partitions_repaired += repaired;
  if (span.active()) span.Attr("repaired", static_cast<uint64_t>(repaired));
  if (repaired == 0) return Status::OK();
  return ValidateStructure();
}

// --- Degraded navigation ---------------------------------------------------

int AccessSupportRelation::PositionOfColumn(uint32_t col) const {
  if (options_.drop_set_columns) {
    return col <= path_.n() ? static_cast<int>(col) : -1;
  }
  for (uint32_t q = 0; q <= path_.n(); ++q) {
    if (path_.ColumnOfPosition(q) == col) return static_cast<int>(q);
  }
  return -1;
}

Result<std::vector<AsrKey>> AccessSupportRelation::StepRight(AsrKey key,
                                                             uint32_t col) {
  const int q = PositionOfColumn(col);
  if (q < 0) {
    // Retained set-instance column: `key` is the set; its members occupy
    // the next column.
    if (!key.IsOid()) return std::vector<AsrKey>{};
    Result<gom::SetView> set = store_->GetSet(key.ToOid());
    ASR_RETURN_IF_ERROR(set.status());
    return set->members;
  }
  ASR_CHECK(static_cast<uint32_t>(q) < path_.n());
  if (!key.IsOid()) return std::vector<AsrKey>{};
  const PathStep& step = path_.step(static_cast<uint32_t>(q) + 1);
  Result<uint32_t> idx =
      store_->schema().FindAttribute(key.ToOid().type_id(), step.attr_name);
  ASR_RETURN_IF_ERROR(idx.status());
  Result<AsrKey> value = store_->GetAttribute(key.ToOid(), *idx);
  ASR_RETURN_IF_ERROR(value.status());
  if (value->IsNull()) return std::vector<AsrKey>{};
  if (!step.set_occurrence) return std::vector<AsrKey>{*value};
  if (!options_.drop_set_columns) {
    // The set instance itself occupies the next (retained) column.
    return std::vector<AsrKey>{*value};
  }
  Result<gom::SetView> set = store_->GetSet(value->ToOid());
  ASR_RETURN_IF_ERROR(set.status());
  return set->members;
}

Result<std::unordered_set<AsrKey>> AccessSupportRelation::NavigateForward(
    const std::unordered_set<AsrKey>& frontier, uint32_t from_col,
    uint32_t to_col) {
  std::unordered_set<AsrKey> cur = frontier;
  // An anchored ASR (§3) materializes only paths originating in C; the
  // navigation fallback must filter the same way.
  if (from_col == ColumnOfPosition(0) &&
      !options_.anchor_collection.IsNull()) {
    std::unordered_set<AsrKey> anchored;
    for (AsrKey key : cur) {
      Result<bool> member =
          store_->SetContains(options_.anchor_collection, key);
      ASR_RETURN_IF_ERROR(member.status());
      if (*member) anchored.insert(key);
    }
    cur = std::move(anchored);
  }
  for (uint32_t col = from_col; col < to_col && !cur.empty(); ++col) {
    std::unordered_set<AsrKey> next;
    for (AsrKey key : cur) {
      if (key.IsNull()) continue;
      Result<std::vector<AsrKey>> succ = StepRight(key, col);
      ASR_RETURN_IF_ERROR(succ.status());
      next.insert(succ->begin(), succ->end());
    }
    cur = std::move(next);
  }
  return cur;
}

Result<std::unordered_set<AsrKey>> AccessSupportRelation::NavigateBackward(
    const std::unordered_set<AsrKey>& frontier, uint32_t from_col,
    uint32_t to_col) {
  ASR_CHECK(to_col < from_col);
  const int q = PositionOfColumn(to_col);
  if (q < 0) {
    return Status::NotSupported(
        "degraded backward navigation cannot enter a retained set-instance "
        "column; Repair() the quarantined partition first");
  }
  // References are stored with the referencing object, so the backward hop
  // is answered the §5.6.2 way: enumerate the candidate objects of the
  // destination position, expand them forward, and back-propagate.
  const gom::Schema& schema = store_->schema();
  std::unordered_set<AsrKey> candidates;
  for (TypeId t = 0; t < schema.type_count(); ++t) {
    if (!schema.IsTuple(t) ||
        !schema.IsSubtypeOf(t, path_.type_at(static_cast<uint32_t>(q)))) {
      continue;
    }
    Status st = store_->ScanTuples(t, [&](const gom::TupleView& view) {
      candidates.insert(AsrKey::FromOid(view.oid));
      return Status::OK();
    });
    ASR_RETURN_IF_ERROR(st);
  }
  if (q == 0 && !options_.anchor_collection.IsNull()) {
    std::unordered_set<AsrKey> anchored;
    for (AsrKey key : candidates) {
      Result<bool> member =
          store_->SetContains(options_.anchor_collection, key);
      ASR_RETURN_IF_ERROR(member.status());
      if (*member) anchored.insert(key);
    }
    candidates = std::move(anchored);
  }
  // Forward expansion with per-column predecessor lists.
  const uint32_t span_cols = from_col - to_col;
  std::vector<std::unordered_map<AsrKey, std::vector<AsrKey>>> preds(
      span_cols);
  std::unordered_set<AsrKey> cur = candidates;
  for (uint32_t col = to_col; col < from_col && !cur.empty(); ++col) {
    std::unordered_set<AsrKey> next;
    auto& pm = preds[col - to_col];
    for (AsrKey key : cur) {
      if (key.IsNull()) continue;
      Result<std::vector<AsrKey>> succ = StepRight(key, col);
      ASR_RETURN_IF_ERROR(succ.status());
      for (AsrKey s : *succ) {
        pm[s].push_back(key);
        next.insert(s);
      }
    }
    cur = std::move(next);
  }
  // Back-propagate the frontier to the destination column.
  std::unordered_set<AsrKey> level = frontier;
  for (uint32_t col = from_col; col > to_col && !level.empty(); --col) {
    const auto& pm = preds[col - to_col - 1];
    std::unordered_set<AsrKey> prev;
    for (AsrKey key : level) {
      auto it = pm.find(key);
      if (it == pm.end()) continue;
      prev.insert(it->second.begin(), it->second.end());
    }
    level = std::move(prev);
  }
  return level;
}

}  // namespace asr
