// Navigational (unsupported) evaluation of forward and backward path queries
// over the object representation — the baseline the paper's Qnas formulas
// model (§5.6).
//
// Forward queries chase references level by level from one anchor object;
// every referenced object is fetched once per level, in page-batched order
// (Eq. 31). Backward queries cannot chase uni-directional references against
// their direction, so they perform the exhaustive search of §5.6.2: scan the
// full extent of t_i, then touch every object of the intermediate types that
// lies on any path, and finally select the t_i objects connected to the
// target (Eq. 32).
#ifndef ASR_ASR_QUERY_H_
#define ASR_ASR_QUERY_H_

#include <vector>

#include "asr/path_expression.h"
#include "common/asr_key.h"
#include "common/status.h"
#include "gom/object_store.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace asr {

class AccessSupportRelation;

// Direction of a path query Q_{i,j}.
enum class QueryDir { kForward, kBackward };

// What Explain returns: the query answer plus the per-stage span tree.
struct ExplainResult {
  std::vector<AsrKey> keys;
  obs::Trace trace;
  // True when the query went through the access support relation; false for
  // the navigational fallback.
  bool used_asr = false;
};

class QueryEvaluator {
 public:
  QueryEvaluator(gom::ObjectStore* store, const PathExpression* path)
      : store_(store), path_(path) {}

  // Q_{i,j}(fw) without access support: keys at position j reachable from
  // `start`, an object at position i.
  Result<std::vector<AsrKey>> ForwardNoSupport(AsrKey start, uint32_t i,
                                               uint32_t j);

  // Q_{i,j}(bw) without access support: position-i objects with at least one
  // path to `target`, a position-j object (or atomic value when j == n).
  Result<std::vector<AsrKey>> BackwardNoSupport(AsrKey target, uint32_t i,
                                                uint32_t j);

  // EXPLAIN: evaluates Q_{i,j} in `dir` under a trace and returns the answer
  // together with the span tree (per-stage page reads/writes, buffer
  // hits/misses, wall time; render with trace.ToText() or trace.ToJson()).
  // With `asr` non-null and its extension supporting Q_{i,j} (Eq. 35), the
  // query runs over the ASR's partition hops; otherwise it falls back to the
  // navigational evaluation above. Single-threaded; the trace reads the same
  // AccessStats the Meter uses, so span costs line up with the model's page
  // counts.
  Result<ExplainResult> Explain(QueryDir dir, AsrKey anchor, uint32_t i,
                                uint32_t j,
                                AccessSupportRelation* asr = nullptr);

  // Pushes the evaluator's counters (query counts per direction, level
  // frontier sizes) into `registry` under `prefix`. Cold path.
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  // Reads the A_{q+1} targets of each position-q object in `sources`,
  // page-batched; appends (source, target) pairs to `edges`.
  Status ExpandLevel(const std::vector<AsrKey>& sources, uint32_t q,
                     std::vector<std::pair<AsrKey, AsrKey>>* edges);

  gom::ObjectStore* store_;
  const PathExpression* path_;

  // Observability (compiled out under ASR_METRICS=OFF).
  obs::HotCounter fwd_queries_;
  obs::HotCounter bwd_queries_;
  obs::HotHistogram frontier_sizes_;  // sources per expanded level
};

}  // namespace asr

#endif  // ASR_ASR_QUERY_H_
