// Navigational (unsupported) evaluation of forward and backward path queries
// over the object representation — the baseline the paper's Qnas formulas
// model (§5.6).
//
// Forward queries chase references level by level from one anchor object;
// every referenced object is fetched once per level, in page-batched order
// (Eq. 31). Backward queries cannot chase uni-directional references against
// their direction, so they perform the exhaustive search of §5.6.2: scan the
// full extent of t_i, then touch every object of the intermediate types that
// lies on any path, and finally select the t_i objects connected to the
// target (Eq. 32).
#ifndef ASR_ASR_QUERY_H_
#define ASR_ASR_QUERY_H_

#include <vector>

#include "asr/path_expression.h"
#include "common/asr_key.h"
#include "common/status.h"
#include "gom/object_store.h"

namespace asr {

class QueryEvaluator {
 public:
  QueryEvaluator(gom::ObjectStore* store, const PathExpression* path)
      : store_(store), path_(path) {}

  // Q_{i,j}(fw) without access support: keys at position j reachable from
  // `start`, an object at position i.
  Result<std::vector<AsrKey>> ForwardNoSupport(AsrKey start, uint32_t i,
                                               uint32_t j);

  // Q_{i,j}(bw) without access support: position-i objects with at least one
  // path to `target`, a position-j object (or atomic value when j == n).
  Result<std::vector<AsrKey>> BackwardNoSupport(AsrKey target, uint32_t i,
                                                uint32_t j);

 private:
  // Reads the A_{q+1} targets of each position-q object in `sources`,
  // page-batched; appends (source, target) pairs to `edges`.
  Status ExpandLevel(const std::vector<AsrKey>& sources, uint32_t q,
                     std::vector<std::pair<AsrKey, AsrKey>>* edges);

  gom::ObjectStore* store_;
  const PathExpression* path_;
};

}  // namespace asr

#endif  // ASR_ASR_QUERY_H_
