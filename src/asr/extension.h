// The four extensions of an access support relation (Defs. 3.3-3.7).
//
// For a path t0.A1.....An the auxiliary relation E_{j-1} materializes the
// edges contributed by attribute A_j: binary (o_{j-1}, o_j) for single-valued
// A_j, ternary (o_{j-1}, o'_j, o_j) through the set instance o'_j for a set
// occurrence (an empty set contributes (o_{j-1}, o'_j, NULL)). The extension
// then is a join chain over E_0 ... E_{n-1}:
//
//   canonical       E_0 |><| ... |><| E_{n-1}        (Def. 3.4)
//   full            E_0 =|><|= ... =|><|= E_{n-1}    (Def. 3.5)
//   left-complete   (...(E_0 =|><| E_1) =|><| ...)   (Def. 3.6)
//   right-complete  (E_0 |><|= (... (E_{n-2} |><|= E_{n-1})...)) (Def. 3.7)
#ifndef ASR_ASR_EXTENSION_H_
#define ASR_ASR_EXTENSION_H_

#include <string>

#include "asr/path_expression.h"
#include "common/status.h"
#include "gom/object_store.h"
#include "rel/relation.h"

namespace asr {

enum class ExtensionKind {
  kCanonical,
  kFull,
  kLeftComplete,
  kRightComplete,
};

// "can", "full", "left", "right" — the paper's labels.
std::string ExtensionKindName(ExtensionKind kind);

// Which (sub-)queries Q_{i,j} an extension can evaluate at all (Eq. 35):
// canonical only i=0 and j=n; left-complete needs i=0; right-complete needs
// j=n; full supports all 0 <= i < j <= n.
bool ExtensionSupportsQuery(ExtensionKind kind, uint32_t i, uint32_t j,
                            uint32_t n);

// Materializes E_{j-1} (1 <= j <= n) by scanning the extent of t_{j-1}
// (including subtype instances). With `drop_set_columns` the set instance
// OIDs are projected away (the paper's no-set-sharing simplification).
// A non-NULL `anchor_collection` restricts E_0 to objects that are members
// of that collection (the §3 alternative of anchoring at a collection C).
Result<rel::Relation> BuildAuxiliaryRelation(gom::ObjectStore* store,
                                             const PathExpression& path,
                                             uint32_t j,
                                             bool drop_set_columns,
                                             Oid anchor_collection = Oid::Null());

// Materializes the chosen extension of the full-width access support
// relation by joining the auxiliary relations.
Result<rel::Relation> ComputeExtension(gom::ObjectStore* store,
                                       const PathExpression& path,
                                       ExtensionKind kind,
                                       bool drop_set_columns,
                                       Oid anchor_collection = Oid::Null());

}  // namespace asr

#endif  // ASR_ASR_EXTENSION_H_
