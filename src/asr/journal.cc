#include "asr/journal.h"

#include <cstring>
#include <mutex>
#include <utility>

#include "obs/events.h"

namespace asr {

namespace {

// WAL record encoding: one type byte, then fixed-width little-endian fields.
//   'I' [u8 op][u64 seq][u64 u_raw][u32 p][u64 w_raw]   intent, edge op
//   'R' [u64 seq]                                       intent, rebuild
//   'C' [u64 seq]                                       commit
//   'L' [u64 seq]                                       lost
//   'A' [u64 seq]                                       aborted (no effect)
//   'V' [u64 count]                                     Recover() resolved all
// Fixed-width fields keep every record self-describing from its type byte
// alone, so replay can reject a record whose size does not match its type.
// A journal writing a nonzero wal_stream() appends one trailing stream-id
// byte to every record (base size + 1, still unambiguous by size); stream 0
// writes the bare format above, byte-identical to the single-journal log.

// Base (stream-0) record size per type byte; 0 = not a journal record.
size_t BaseRecordSize(char type) {
  switch (type) {
    case 'I':
      return 1 + 1 + 8 + 8 + 4 + 8;
    case 'R':
    case 'C':
    case 'L':
    case 'A':
    case 'V':
      return 1 + 8;
    default:
      return 0;
  }
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

uint32_t GetU32(std::string_view in, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[off + i]))
         << (8 * i);
  }
  return v;
}

uint64_t GetU64(std::string_view in, size_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[off + i]))
         << (8 * i);
  }
  return v;
}

std::string SeqRecord(char type, uint64_t seq) {
  std::string out(1, type);
  PutU64(&out, seq);
  return out;
}

}  // namespace

const char* MaintOpName(MaintOp op) {
  switch (op) {
    case MaintOp::kEdgeInsert:
      return "edge_insert";
    case MaintOp::kEdgeRemove:
      return "edge_remove";
    case MaintOp::kRebuild:
      return "rebuild";
  }
  return "unknown";
}

const char* JournalStateName(JournalState state) {
  switch (state) {
    case JournalState::kPending:
      return "pending";
    case JournalState::kCommitted:
      return "committed";
    case JournalState::kLost:
      return "lost";
    case JournalState::kRecovered:
      return "recovered";
    case JournalState::kAborted:
      return "aborted";
  }
  return "unknown";
}

uint64_t MaintenanceJournal::Append(JournalEntry entry) {
  entry.seq = next_seq_++;
  entry.state = JournalState::kPending;
  ++pending_;
  entries_.push_back(std::move(entry));
  TruncateResolved();
  const JournalEntry& e = entries_.back();
  if (wal_ != nullptr) {
    if (e.op == MaintOp::kRebuild) {
      // Intent records ride to the platter with the next commit's sync: the
      // object base is authoritative, so an intent lost before any tree
      // write just means the op never happened.
      AppendWal(SeqRecord('R', e.seq), /*sync=*/false);
    } else {
      std::string rec(1, 'I');
      rec.push_back(e.op == MaintOp::kEdgeInsert ? 0 : 1);
      PutU64(&rec, e.seq);
      PutU64(&rec, e.u.raw());
      PutU32(&rec, e.p);
      PutU64(&rec, e.w.raw());
      AppendWal(rec, /*sync=*/false);
    }
  }
  return e.seq;
}

uint64_t MaintenanceJournal::BeginEdge(MaintOp op, Oid u, uint32_t p,
                                       AsrKey w) {
  ASR_DCHECK(op != MaintOp::kRebuild);
  JournalEntry entry;
  entry.op = op;
  entry.u = u;
  entry.p = p;
  entry.w = w;
  std::lock_guard<std::mutex> lock(mu_);
  return Append(entry);
}

uint64_t MaintenanceJournal::BeginRebuild() {
  JournalEntry entry;
  entry.op = MaintOp::kRebuild;
  std::lock_guard<std::mutex> lock(mu_);
  return Append(entry);
}

JournalEntry* MaintenanceJournal::Find(uint64_t seq) {
  // Unresolved entries cluster at the tail; scan backwards.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->seq == seq) return &*it;
  }
  return nullptr;
}

void MaintenanceJournal::Commit(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  JournalEntry* entry = Find(seq);
  ASR_CHECK(entry != nullptr && entry->state == JournalState::kPending);
  entry->state = JournalState::kCommitted;
  --pending_;
  ++committed_;
  // The fdatasync commit point: the intent record and this commit become
  // durable together; a crash before it leaves a trailing intent that forces
  // Recover() on reopen.
  AppendWal(SeqRecord('C', seq), /*sync=*/true);
}

void MaintenanceJournal::MarkAborted(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  JournalEntry* entry = Find(seq);
  ASR_CHECK(entry != nullptr && entry->state == JournalState::kPending);
  entry->state = JournalState::kAborted;
  --pending_;
  ++aborted_;
  // Synced like the other resolutions: a trailing unresolved intent forces
  // Recover() on reopen, and an abort that rolled back cleanly should not.
  AppendWal(SeqRecord('A', seq), /*sync=*/true);
}

void MaintenanceJournal::MarkLost(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  JournalEntry* entry = Find(seq);
  ASR_CHECK(entry != nullptr && entry->state == JournalState::kPending);
  entry->state = JournalState::kLost;
  --pending_;
  ++lost_;
  ASR_EVENT(obs::EventKind::kMaintenanceLost,
            "seq=" + std::to_string(seq) +
                " op=" + std::string(MaintOpName(entry->op)));
  AppendWal(SeqRecord('L', seq), /*sync=*/true);
}

uint64_t MaintenanceJournal::MarkAllRecovered() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t resolved = 0;
  for (JournalEntry& entry : entries_) {
    if (entry.state == JournalState::kPending ||
        entry.state == JournalState::kLost) {
      entry.state = JournalState::kRecovered;
      ++resolved;
    }
  }
  pending_ = 0;
  lost_ = 0;
  recovered_ += resolved;
  TruncateResolved();
  if (resolved > 0) AppendWal(SeqRecord('V', resolved), /*sync=*/true);
  return resolved;
}

void MaintenanceJournal::AppendWal(std::string record, bool sync) {
  if (wal_ == nullptr) return;
  if (stream_ != 0) record.push_back(static_cast<char>(stream_));
  Status st = wal_->Append(record);
  if (st.ok() && sync) st = wal_->Sync();
  if (!st.ok() && wal_error_.ok()) wal_error_ = st;
}

bool MaintenanceJournal::ApplyWalRecord(std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (payload.empty()) return false;
  // Stream routing: the record must be sized for its type exactly (stream 0)
  // or with one trailing id byte (nonzero streams), and the id must be ours.
  // Foreign streams report "not mine" so a sibling journal can claim them.
  const size_t base = BaseRecordSize(payload[0]);
  if (base == 0) return false;
  uint8_t rec_stream = 0;
  if (payload.size() == base + 1) {
    rec_stream = static_cast<uint8_t>(payload.back());
    if (rec_stream == 0) return false;  // stream byte is never written as 0
  } else if (payload.size() != base) {
    return false;
  }
  if (rec_stream != stream_) return false;
  switch (payload[0]) {
    case 'I': {
      JournalEntry entry;
      entry.op = payload[1] == 0 ? MaintOp::kEdgeInsert : MaintOp::kEdgeRemove;
      entry.seq = GetU64(payload, 2);
      entry.u = Oid::FromRaw(GetU64(payload, 10));
      entry.p = GetU32(payload, 18);
      entry.w = AsrKey::FromRaw(GetU64(payload, 22));
      entry.state = JournalState::kPending;
      ++pending_;
      entries_.push_back(entry);
      if (entry.seq >= next_seq_) next_seq_ = entry.seq + 1;
      return true;
    }
    case 'R': {
      JournalEntry entry;
      entry.op = MaintOp::kRebuild;
      entry.seq = GetU64(payload, 1);
      entry.state = JournalState::kPending;
      ++pending_;
      entries_.push_back(entry);
      if (entry.seq >= next_seq_) next_seq_ = entry.seq + 1;
      return true;
    }
    case 'C':
    case 'L':
    case 'A': {
      const uint64_t seq = GetU64(payload, 1);
      JournalEntry* entry = Find(seq);
      // A resolution whose intent was truncated away (checkpointed prefix)
      // is a no-op: the entry is already reflected in the snapshot.
      if (entry == nullptr || entry->state != JournalState::kPending) {
        return true;
      }
      --pending_;
      if (payload[0] == 'C') {
        entry->state = JournalState::kCommitted;
        ++committed_;
      } else if (payload[0] == 'A') {
        entry->state = JournalState::kAborted;
        ++aborted_;
      } else {
        entry->state = JournalState::kLost;
        ++lost_;
      }
      TruncateResolved();
      return true;
    }
    case 'V': {
      uint64_t resolved = 0;
      for (JournalEntry& entry : entries_) {
        if (entry.state == JournalState::kPending ||
            entry.state == JournalState::kLost) {
          entry.state = JournalState::kRecovered;
          ++resolved;
        }
      }
      pending_ = 0;
      lost_ = 0;
      recovered_ += resolved;
      TruncateResolved();
      return true;
    }
    default:
      return false;
  }
}

void MaintenanceJournal::TruncateResolved() {
  while (entries_.size() > kMaxResolved &&
         entries_.front().state != JournalState::kPending &&
         entries_.front().state != JournalState::kLost) {
    entries_.pop_front();
  }
}

std::string MaintenanceJournal::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "journal: pending=" + std::to_string(pending_) +
                    " lost=" + std::to_string(lost_) +
                    " committed=" + std::to_string(committed_) +
                    " recovered=" + std::to_string(recovered_) + "\n";
  for (const JournalEntry& entry : entries_) {
    if (entry.state == JournalState::kCommitted) continue;
    out += "  #" + std::to_string(entry.seq) + " " + MaintOpName(entry.op);
    if (entry.op != MaintOp::kRebuild) {
      out += " u=" + entry.u.ToString() + " p=" + std::to_string(entry.p) +
             " w=" + entry.w.ToString();
    }
    out += " [" + std::string(JournalStateName(entry.state)) + "]\n";
  }
  return out;
}

void MaintenanceJournal::ExportMetrics(obs::MetricsRegistry* registry,
                                       const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry->Set(prefix + ".pending", pending_);
  registry->Set(prefix + ".lost", lost_);
  registry->Set(prefix + ".committed", committed_);
  registry->Set(prefix + ".recovered", recovered_);
  registry->Set(prefix + ".aborted", aborted_);
}

}  // namespace asr
