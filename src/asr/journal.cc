#include "asr/journal.h"

#include <utility>

namespace asr {

const char* MaintOpName(MaintOp op) {
  switch (op) {
    case MaintOp::kEdgeInsert:
      return "edge_insert";
    case MaintOp::kEdgeRemove:
      return "edge_remove";
    case MaintOp::kRebuild:
      return "rebuild";
  }
  return "unknown";
}

const char* JournalStateName(JournalState state) {
  switch (state) {
    case JournalState::kPending:
      return "pending";
    case JournalState::kCommitted:
      return "committed";
    case JournalState::kLost:
      return "lost";
    case JournalState::kRecovered:
      return "recovered";
  }
  return "unknown";
}

uint64_t MaintenanceJournal::Append(JournalEntry entry) {
  entry.seq = next_seq_++;
  entry.state = JournalState::kPending;
  ++pending_;
  entries_.push_back(std::move(entry));
  TruncateResolved();
  return entries_.back().seq;
}

uint64_t MaintenanceJournal::BeginEdge(MaintOp op, Oid u, uint32_t p,
                                       AsrKey w) {
  ASR_DCHECK(op != MaintOp::kRebuild);
  JournalEntry entry;
  entry.op = op;
  entry.u = u;
  entry.p = p;
  entry.w = w;
  return Append(entry);
}

uint64_t MaintenanceJournal::BeginRebuild() {
  JournalEntry entry;
  entry.op = MaintOp::kRebuild;
  return Append(entry);
}

JournalEntry* MaintenanceJournal::Find(uint64_t seq) {
  // Unresolved entries cluster at the tail; scan backwards.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->seq == seq) return &*it;
  }
  return nullptr;
}

void MaintenanceJournal::Commit(uint64_t seq) {
  JournalEntry* entry = Find(seq);
  ASR_CHECK(entry != nullptr && entry->state == JournalState::kPending);
  entry->state = JournalState::kCommitted;
  --pending_;
  ++committed_;
}

void MaintenanceJournal::MarkLost(uint64_t seq) {
  JournalEntry* entry = Find(seq);
  ASR_CHECK(entry != nullptr && entry->state == JournalState::kPending);
  entry->state = JournalState::kLost;
  --pending_;
  ++lost_;
}

uint64_t MaintenanceJournal::MarkAllRecovered() {
  uint64_t resolved = 0;
  for (JournalEntry& entry : entries_) {
    if (entry.state == JournalState::kPending ||
        entry.state == JournalState::kLost) {
      entry.state = JournalState::kRecovered;
      ++resolved;
    }
  }
  pending_ = 0;
  lost_ = 0;
  recovered_ += resolved;
  TruncateResolved();
  return resolved;
}

void MaintenanceJournal::TruncateResolved() {
  while (entries_.size() > kMaxResolved &&
         entries_.front().state != JournalState::kPending &&
         entries_.front().state != JournalState::kLost) {
    entries_.pop_front();
  }
}

std::string MaintenanceJournal::ToString() const {
  std::string out = "journal: pending=" + std::to_string(pending_) +
                    " lost=" + std::to_string(lost_) +
                    " committed=" + std::to_string(committed_) +
                    " recovered=" + std::to_string(recovered_) + "\n";
  for (const JournalEntry& entry : entries_) {
    if (entry.state == JournalState::kCommitted) continue;
    out += "  #" + std::to_string(entry.seq) + " " + MaintOpName(entry.op);
    if (entry.op != MaintOp::kRebuild) {
      out += " u=" + entry.u.ToString() + " p=" + std::to_string(entry.p) +
             " w=" + entry.w.ToString();
    }
    out += " [" + std::string(JournalStateName(entry.state)) + "]\n";
  }
  return out;
}

void MaintenanceJournal::ExportMetrics(obs::MetricsRegistry* registry,
                                       const std::string& prefix) const {
  registry->Set(prefix + ".pending", pending_);
  registry->Set(prefix + ".lost", lost_);
  registry->Set(prefix + ".committed", committed_);
  registry->Set(prefix + ".recovered", recovered_);
}

}  // namespace asr
