#include "cost/opmix.h"

namespace asr::cost {

std::string WeightedQuery::ToString() const {
  return "Q_{" + std::to_string(i) + "," + std::to_string(j) + "}(" +
         (dir == QueryDirection::kForward ? "fw" : "bw") + ")";
}

std::string WeightedUpdate::ToString() const {
  return "ins_" + std::to_string(position);
}

double MixCost(const CostModel& model, ExtensionKind x,
               const Decomposition& dec, const OperationMix& mix,
               double p_up) {
  double query_cost = 0.0;
  for (const WeightedQuery& q : mix.queries) {
    query_cost += q.weight * model.QueryCost(x, q.dir, q.i, q.j, dec);
  }
  double update_cost = 0.0;
  for (const WeightedUpdate& u : mix.updates) {
    update_cost += u.weight * model.UpdateCost(x, u.position, dec);
  }
  return (1.0 - p_up) * query_cost + p_up * update_cost;
}

double MixCostNoSupport(const CostModel& model, const OperationMix& mix,
                        double p_up) {
  double query_cost = 0.0;
  for (const WeightedQuery& q : mix.queries) {
    query_cost += q.weight * model.QueryNoSupport(q.dir, q.i, q.j);
  }
  double update_cost = 0.0;
  for (const WeightedUpdate& u : mix.updates) {
    update_cost += u.weight * model.UpdateCostNoSupport();
  }
  return (1.0 - p_up) * query_cost + p_up * update_cost;
}

double NormalizedMixCost(const CostModel& model, ExtensionKind x,
                         const Decomposition& dec, const OperationMix& mix,
                         double p_up) {
  double base = MixCostNoSupport(model, mix, p_up);
  if (base <= 0) return 0.0;
  return MixCost(model, x, dec, mix, p_up) / base;
}

}  // namespace asr::cost
