// Operation mixes M = (Qmix, Umix, P_up) and their expected cost (§6.4.1).
#ifndef ASR_COST_OPMIX_H_
#define ASR_COST_OPMIX_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"

namespace asr::cost {

struct WeightedQuery {
  double weight = 0.0;  // probability among queries; weights sum to 1
  QueryDirection dir = QueryDirection::kBackward;
  uint32_t i = 0;
  uint32_t j = 0;

  // "Q_{i,j}(bw)" rendering.
  std::string ToString() const;
};

struct WeightedUpdate {
  double weight = 0.0;   // probability among updates; weights sum to 1
  uint32_t position = 0;  // ins_i: insert at attribute A_{i+1}

  std::string ToString() const;
};

struct OperationMix {
  std::vector<WeightedQuery> queries;
  std::vector<WeightedUpdate> updates;
};

// Expected page accesses of one database operation drawn from the mix with
// update probability `p_up` under extension `x` / decomposition `dec`.
double MixCost(const CostModel& model, ExtensionKind x,
               const Decomposition& dec, const OperationMix& mix,
               double p_up);

// Same mix with no access support at all: queries run navigationally and an
// update only touches the object.
double MixCostNoSupport(const CostModel& model, const OperationMix& mix,
                        double p_up);

// MixCost / MixCostNoSupport — the "normalized costs" of Figs. 14-17.
double NormalizedMixCost(const CostModel& model, ExtensionKind x,
                         const Decomposition& dec, const OperationMix& mix,
                         double p_up);

}  // namespace asr::cost

#endif  // ASR_COST_OPMIX_H_
