#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace asr::cost {

namespace {

// Probability bases of the form (1 - x) can leave [0,1] for extreme
// profiles (fan_i larger than e_{i+1}); the paper notes the approximation
// error for that regime (§4.1.1). Clamping keeps the model stable there.
double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

double CeilPos(double x) { return std::ceil(std::max(0.0, x)); }

}  // namespace

CostModel::CostModel(ApplicationProfile profile, SystemParameters system)
    : profile_(std::move(profile)), system_(system) {
  ASR_CHECK(profile_.Validate().ok());
  if (profile_.size.empty()) {
    profile_.size.assign(profile_.n + 1, 100.0);
  }
  // shar_i defaults to d_i * fan_i / c_{i+1} (Fig. 3). An average sharing
  // below one reference per referenced object is not meaningful — it would
  // make e_{i+1} = c_{i+1}, i.e. claim every object is referenced even when
  // there are fewer references than objects, which contradicts the paper's
  // own Fig. 4 discussion ("few objects at the left side ... cause the
  // canonical and left-complete extensions to be drastically smaller").
  // Under the stated uniform-spread assumption sharing approaches 1 in that
  // regime, so the default is clamped from below at 1.
  shar_.resize(profile_.n);
  for (uint32_t i = 0; i < profile_.n; ++i) {
    shar_[i] = profile_.shar.empty()
                   ? std::max(1.0, profile_.d[i] * profile_.fan[i] /
                                       profile_.c[i + 1])
                   : profile_.shar[i];
  }
  // e_i = d_{i-1} * fan_{i-1} / shar_{i-1} (Fig. 3); e_[0] unused.
  e_.resize(profile_.n + 1, 0.0);
  for (uint32_t i = 1; i <= profile_.n; ++i) {
    e_[i] = shar_[i - 1] > 0
                ? profile_.d[i - 1] * profile_.fan[i - 1] / shar_[i - 1]
                : 0.0;
    e_[i] = std::min(e_[i], profile_.c[i]);
  }
}

double CostModel::shar(uint32_t i) const {
  ASR_DCHECK(i < profile_.n);
  return shar_[i];
}

double CostModel::e(uint32_t i) const {
  ASR_DCHECK(i >= 1 && i <= profile_.n);
  return e_[i];
}

double CostModel::RefBy(uint32_t i, uint32_t j) const {
  ASR_DCHECK(i <= j && j <= n());
  if (i == j) return c(i);
  // Eq. 6, iteratively from l = i+1 up to j.
  double val = e(i + 1);
  for (uint32_t l = i + 2; l <= j; ++l) {
    if (e(l) <= 0) return 0.0;
    double base = Clamp01(1.0 - fan(l - 1) / e(l));
    val = e(l) * (1.0 - std::pow(base, val * PA(l - 1)));
  }
  return val;
}

double CostModel::PRefBy(uint32_t i, uint32_t j) const {
  if (i == j) return 1.0;  // Eq. 7
  return RefBy(i, j) / c(j);
}

double CostModel::Ref(uint32_t i, uint32_t j) const {
  ASR_DCHECK(i <= j && j <= n());
  if (i == j) return c(i);
  // Eq. 8, iteratively from l = j-1 down to i.
  double val = d(j - 1);
  for (uint32_t l = j - 1; l-- > i;) {
    if (d(l) <= 0) return 0.0;
    double base = Clamp01(1.0 - shar(l) / d(l));
    val = d(l) * (1.0 - std::pow(base, val * PH(l + 1)));
  }
  return val;
}

double CostModel::PRef(uint32_t i, uint32_t j) const {
  if (i == j) return 1.0;  // Eq. 9
  return Ref(i, j) / c(i);
}

double CostModel::PathCount(uint32_t i, uint32_t j) const {
  ASR_DCHECK(i < j && j <= n());
  // Eq. 10.
  double val = ref(i);
  for (uint32_t l = i + 1; l <= j - 1; ++l) {
    val *= PA(l) * fan(l);
  }
  return val;
}

double CostModel::RefBy(uint32_t i, uint32_t j, double k) const {
  ASR_DCHECK(i <= j && j <= n());
  if (i == j) return std::min(k, c(i));
  // Eq. 29.
  if (e(i + 1) <= 0) return 0.0;
  double val =
      e(i + 1) * (1.0 - std::pow(Clamp01(1.0 - fan(i) / e(i + 1)), k));
  for (uint32_t l = i + 2; l <= j; ++l) {
    if (e(l) <= 0) return 0.0;
    double base = Clamp01(1.0 - fan(l - 1) / e(l));
    val = e(l) * (1.0 - std::pow(base, val * PA(l - 1)));
  }
  return val;
}

double CostModel::Ref(uint32_t i, uint32_t j, double k) const {
  ASR_DCHECK(i <= j && j <= n());
  if (i == j) return std::min(k, c(i));
  // Eq. 30.
  if (d(j - 1) <= 0) return 0.0;
  double val = d(j - 1) *
               (1.0 - std::pow(Clamp01(1.0 - shar(j - 1) / d(j - 1)), k));
  for (uint32_t l = j - 1; l-- > i;) {
    if (d(l) <= 0) return 0.0;
    double base = Clamp01(1.0 - shar(l) / d(l));
    val = d(l) * (1.0 - std::pow(base, val * PH(l + 1)));
  }
  return val;
}

double CostModel::Yao(double k, double m, double n) {
  if (m <= 0 || n <= 0 || k <= 0) return 0.0;
  if (k >= n) return std::ceil(m);
  uint64_t kk = static_cast<uint64_t>(std::ceil(k));
  double prod = 1.0;
  double n_eff = n * (1.0 - 1.0 / m);
  for (uint64_t idx = 1; idx <= kk; ++idx) {
    double numer = n_eff - static_cast<double>(idx) + 1.0;
    double denom = n - static_cast<double>(idx) + 1.0;
    if (numer <= 0 || denom <= 0) {
      prod = 0.0;
      break;
    }
    prod *= numer / denom;
    if (prod < 1e-12) {
      prod = 0.0;
      break;
    }
  }
  return std::ceil(m * (1.0 - prod));
}

double CostModel::Plb(uint32_t i, uint32_t j) const {
  if (i < j) return 1.0 - PRefBy(i, j);  // Eq. 11
  return 1.0;
}

double CostModel::Prb(uint32_t i, uint32_t j) const {
  if (i < j) return 1.0 - PRef(i, j);  // Eq. 12
  return 1.0;
}

double CostModel::Cardinality(ExtensionKind x, uint32_t i, uint32_t j) const {
  ASR_DCHECK(i < j && j <= n());
  switch (x) {
    case ExtensionKind::kCanonical:
      // §4.2.1: complete paths crossing the partition.
      return PRefBy(0, i) * PathCount(i, j) * PRef(j, n());
    case ExtensionKind::kFull: {
      // §4.2.2: every maximal fragment of length k anchored at l.
      double sum = 0.0;
      for (uint32_t k = 1; k <= j - i; ++k) {
        for (uint32_t l = i; l + k <= j; ++l) {
          uint32_t lm1 = (l == 0) ? 0 : l - 1;
          sum += Plb(std::max(i, lm1), l) * PathCount(l, l + k) *
                 Prb(l + k, std::min(j, l + k + 1));
        }
      }
      return sum;
    }
    case ExtensionKind::kLeftComplete: {
      // §4.2.3.
      double sum = 0.0;
      for (uint32_t k = 1; k <= j - i; ++k) {
        sum += PRefBy(0, i) * PathCount(i, i + k) *
               Prb(i + k, std::min(j, i + k + 1));
      }
      return sum;
    }
    case ExtensionKind::kRightComplete: {
      // §4.2.4.
      double sum = 0.0;
      for (uint32_t k = 1; k <= j - i; ++k) {
        uint32_t jk = j - k;
        uint32_t jkm1 = (jk == 0) ? 0 : jk - 1;
        sum += Plb(std::max(i, jkm1), jk) * PathCount(jk, j) * PRef(j, n());
      }
      return sum;
    }
  }
  return 0.0;
}

double CostModel::TupleBytes(uint32_t i, uint32_t j) const {
  return system_.oid_size * (j - i + 1);  // Eq. 13
}

double CostModel::TuplesPerPage(uint32_t i, uint32_t j) const {
  return std::floor(system_.page_size / TupleBytes(i, j));  // Eq. 14
}

double CostModel::PartitionBytes(ExtensionKind x, uint32_t i,
                                 uint32_t j) const {
  return Cardinality(x, i, j) * TupleBytes(i, j);  // Eq. 15
}

double CostModel::PartitionPages(ExtensionKind x, uint32_t i,
                                 uint32_t j) const {
  return CeilPos(Cardinality(x, i, j) / TuplesPerPage(i, j));  // Eq. 16
}

double CostModel::TotalBytes(ExtensionKind x, const Decomposition& dec) const {
  double sum = 0.0;
  for (size_t p = 0; p < dec.partition_count(); ++p) {
    auto [a, b] = dec.partition(p);
    sum += PartitionBytes(x, a, b);
  }
  return sum;
}

double CostModel::ObjectsPerPage(uint32_t i) const {
  return std::max(1.0, std::floor(system_.page_size / size(i)));  // Eq. 17
}

double CostModel::ObjectPages(uint32_t i) const {
  return std::ceil(c(i) / ObjectsPerPage(i));  // Eq. 18
}

double CostModel::BTreeHeight(ExtensionKind x, uint32_t i, uint32_t j) const {
  double ap = std::max(1.0, PartitionPages(x, i, j));
  // Eq. 19: height above the leaves.
  return std::ceil(std::log(ap) / std::log(system_.BTreeFanOut()));
}

double CostModel::BTreeNonLeafPages(ExtensionKind x, uint32_t i,
                                    uint32_t j) const {
  // Eq. 20, generalized to any height: one directory level at a time.
  double ap = std::max(1.0, PartitionPages(x, i, j));
  double ht = BTreeHeight(x, i, j);
  double fanout = system_.BTreeFanOut();
  double pages = 0.0;
  double level = ap;
  for (uint32_t l = 0; l < static_cast<uint32_t>(ht); ++l) {
    level = std::ceil(level / fanout);
    pages += level;
  }
  return pages;
}

double CostModel::LeafPagesPerValue(ExtensionKind x, uint32_t i,
                                    uint32_t j) const {
  double as = PartitionBytes(x, i, j);
  double denom = 0.0;
  switch (x) {
    case ExtensionKind::kFull:
      denom = d(i);  // Eq. 21
      break;
    case ExtensionKind::kRightComplete:
      denom = d(i);  // Eq. 22
      break;
    case ExtensionKind::kCanonical:
      denom = Ref(i, n()) * PRefBy(0, i);  // Eq. 23
      break;
    case ExtensionKind::kLeftComplete:
      denom = RefBy(0, i);  // Eq. 24
      break;
  }
  if (denom <= 0 || as <= 0) return 0.0;
  return std::ceil(as / (system_.page_size * denom));
}

double CostModel::RevLeafPagesPerValue(ExtensionKind x, uint32_t i,
                                       uint32_t j) const {
  double as = PartitionBytes(x, i, j);
  double denom = 0.0;
  switch (x) {
    case ExtensionKind::kFull:
      // Eq. 25 prints e_i; the reverse tree is clustered on t_j OIDs, so we
      // read it as its symmetric counterpart e_j.
      denom = e(j);
      break;
    case ExtensionKind::kLeftComplete:
      // Eq. 26 prints as_right/e_i; symmetric reading: as_left over the
      // distinct t_j values on left-complete paths, RefBy(0, j).
      denom = RefBy(0, j);
      break;
    case ExtensionKind::kCanonical:
      denom = Ref(j, n()) * PRefBy(0, j);  // Eq. 27
      break;
    case ExtensionKind::kRightComplete:
      denom = Ref(j, n());  // Eq. 28
      break;
  }
  if (denom <= 0 || as <= 0) return 0.0;
  return std::ceil(as / (system_.page_size * denom));
}

double CostModel::QueryNoSupport(QueryDirection dir, uint32_t i,
                                 uint32_t j) const {
  ASR_DCHECK(i <= j && j <= n());
  if (i == j) return 0.0;
  double sum = 0.0;
  if (dir == QueryDirection::kForward) {
    sum = 1.0;  // Eq. 31: fetch the anchor object
    for (uint32_t l = i + 1; l <= j - 1; ++l) {
      sum += Yao(std::ceil(RefBy(i, l, 1)), ObjectPages(l), c(l));
    }
  } else {
    sum = ObjectPages(i);  // Eq. 32: exhaustive scan of the t_i extent
    for (uint32_t l = i + 1; l <= j - 1; ++l) {
      sum += Yao(std::ceil(RefBy(i, l, d(i))), ObjectPages(l), c(l));
    }
  }
  return sum;
}

double CostModel::QuerySupported(ExtensionKind x, QueryDirection dir,
                                 uint32_t i, uint32_t j,
                                 const Decomposition& dec) const {
  ASR_DCHECK(i < j && j <= n());
  double sum = 0.0;
  const double fanout = system_.BTreeFanOut();
  for (size_t p = 0; p < dec.partition_count(); ++p) {
    auto [a, b] = dec.partition(p);
    if (dir == QueryDirection::kForward) {
      // Eq. 33.
      if (a == i && i < b) {
        sum += BTreeHeight(x, a, b) + LeafPagesPerValue(x, a, b);
      } else if (a < i && i < b) {
        sum += PartitionPages(x, a, b);
      } else if (i < a && a < j) {
        double k = std::ceil(RefBy(i, a, 1));
        double pg1 = std::max(0.0, BTreeNonLeafPages(x, a, b) - 1.0);
        sum += 1.0 + Yao(k, pg1, pg1 * fanout) +
               Yao(k * LeafPagesPerValue(x, a, b), PartitionPages(x, a, b),
                   Cardinality(x, a, b));
      }
    } else {
      // Eq. 34.
      if (a < j && j == b) {
        sum += BTreeHeight(x, a, b) + RevLeafPagesPerValue(x, a, b);
      } else if (a < j && j < b) {
        sum += PartitionPages(x, a, b);
      } else if (i < b && b < j) {
        double k = std::ceil(Ref(b, j, 1));
        double pg1 = std::max(0.0, BTreeNonLeafPages(x, a, b) - 1.0);
        sum += 1.0 + Yao(k, pg1, pg1 * fanout) +
               Yao(k * RevLeafPagesPerValue(x, a, b),
                   PartitionPages(x, a, b), Cardinality(x, a, b));
      }
    }
  }
  return sum;
}

double CostModel::QueryCost(ExtensionKind x, QueryDirection dir, uint32_t i,
                            uint32_t j, const Decomposition& dec) const {
  // Eq. 35: fall back to the navigational cost when the extension cannot
  // evaluate Q_{i,j}.
  if (ExtensionSupportsQuery(x, i, j, n())) {
    return QuerySupported(x, dir, i, j, dec);
  }
  return QueryNoSupport(dir, i, j);
}

double CostModel::PPath(uint32_t l) const {
  return PRefBy(0, l) * PRef(l, n());  // Eq. 38
}

double CostModel::PNoPath(uint32_t l) const { return 1.0 - PPath(l); }

double CostModel::UpdateSearchCost(ExtensionKind x, uint32_t i,
                                   const Decomposition& dec) const {
  ASR_DCHECK(i < n());
  // Eq. 36.
  double sup_fw = QuerySupported(x, QueryDirection::kForward, i, i + 1, dec);
  double sup_bw = QuerySupported(x, QueryDirection::kBackward, i, i + 1, dec);
  switch (x) {
    case ExtensionKind::kCanonical: {
      double fw_search =
          (i + 1 < n())
              ? QueryNoSupport(QueryDirection::kForward, i + 1, n()) *
                    PNoPath(i + 1)
              : 0.0;
      double bw_search =
          (i > 0) ? QueryNoSupport(QueryDirection::kBackward, 0, i) *
                        PRef(i + 1, n()) * PNoPath(i)
                  : 0.0;
      return fw_search + sup_bw + bw_search + sup_fw;
    }
    case ExtensionKind::kFull:
      return std::min(sup_fw, sup_bw);
    case ExtensionKind::kLeftComplete: {
      double fw_search =
          (i + 1 < n())
              ? QueryNoSupport(QueryDirection::kForward, i + 1, n()) *
                    (1.0 - PRefBy(0, i + 1)) * PRefBy(0, i)
              : 0.0;
      return fw_search + std::min(sup_fw, sup_bw);
    }
    case ExtensionKind::kRightComplete: {
      double scan = 0.0;
      for (uint32_t l = 0; l <= i; ++l) scan += ObjectPages(l);
      return scan * (1.0 - PRef(i, n())) * PRef(i + 1, n()) +
             std::min(sup_fw, sup_bw);
    }
  }
  return 0.0;
}

double CostModel::ClustersForward(ExtensionKind x, uint32_t i, uint32_t lo,
                                  uint32_t hi) const {
  // §6.2.1-§6.2.4, qfw_X(i_nu, i_nu+1) for the update ins_i.
  switch (x) {
    case ExtensionKind::kCanonical:
      if (lo <= i) {
        return Ref(lo, i, 1) * PRefBy(0, lo) * PRef(i + 1, n());
      }
      return RefBy(i + 1, lo, 1) * PRefBy(0, i) * PRef(lo, n());
    case ExtensionKind::kFull: {
      if (!(lo <= i && i < hi)) return 0.0;
      double sum = Ref(lo, i, 1);
      for (uint32_t l = lo + 1; l <= i; ++l) {
        sum += Plb(l - 1, l) * Ref(l, i, 1);
      }
      return sum;
    }
    case ExtensionKind::kLeftComplete:
      if (hi <= i) return 0.0;
      if (lo <= i) return Ref(lo, i, 1) * PRefBy(0, lo);
      return Plb(0, lo) * RefBy(i + 1, lo, 1) * PRefBy(0, i);
    case ExtensionKind::kRightComplete: {
      if (i < lo) return 0.0;
      if (hi <= i) {
        double sum = Ref(lo, i, 1);
        for (uint32_t l = lo + 1; l <= hi - 1; ++l) {
          sum += Plb(l - 1, l) * Ref(l, i, 1);
        }
        return Prb(hi, n()) * PRef(i + 1, n()) * sum;
      }
      double sum = Ref(lo, i, 1);
      for (uint32_t l = lo + 1; l <= i; ++l) {
        sum += Plb(l - 1, l) * Ref(l, i, 1);
      }
      return PRef(i + 1, n()) * sum;
    }
  }
  return 0.0;
}

double CostModel::ClustersBackward(ExtensionKind x, uint32_t i, uint32_t lo,
                                   uint32_t hi) const {
  switch (x) {
    case ExtensionKind::kCanonical:
      if (hi <= i) {
        return Ref(hi, i, 1) * PRefBy(0, hi) * PRef(i + 1, n());
      }
      return RefBy(i + 1, hi, 1) * PRefBy(0, i) * PRef(hi, n());
    case ExtensionKind::kFull: {
      if (!(lo <= i && i < hi)) return 0.0;
      double sum = RefBy(i + 1, hi, 1);
      for (uint32_t l = i + 2; l + 1 <= hi; ++l) {
        sum += Prb(l, l + 1) * RefBy(i + 1, l, 1);
      }
      return sum;
    }
    case ExtensionKind::kLeftComplete: {
      if (hi <= i) return 0.0;
      if (lo <= i) {
        double sum = RefBy(i + 1, hi, 1);
        for (uint32_t l = i + 2; l + 1 <= hi; ++l) {
          sum += Prb(l, l + 1) * RefBy(i + 1, l, 1);
        }
        return PRefBy(0, i) * sum;
      }
      double sum = RefBy(i + 1, hi, 1);
      for (uint32_t l = lo + 1; l + 1 <= hi; ++l) {
        sum += Prb(l, l + 1) * RefBy(i + 1, l, 1);
      }
      return PRefBy(0, i) * Plb(0, lo) * sum;
    }
    case ExtensionKind::kRightComplete:
      if (i < lo) return 0.0;
      if (hi <= i) return Prb(hi, n()) * Ref(hi, i, 1) * PRef(i + 1, n());
      return RefBy(i + 1, hi, 1) * PRef(hi, n());
  }
  return 0.0;
}

double CostModel::UpdateTreeCost(ExtensionKind x, uint32_t i,
                                 const Decomposition& dec) const {
  // aup_X^i (§6.2): per partition, read the non-leaf B+ pages leading to the
  // affected clusters, then read and write back their leaf pages (factor 2),
  // for both the forward- and the backward-clustered tree.
  double sum = 0.0;
  const double fanout = system_.BTreeFanOut();
  for (size_t p = 0; p < dec.partition_count(); ++p) {
    auto [a, b] = dec.partition(p);
    double card = Cardinality(x, a, b);
    double ap = PartitionPages(x, a, b);
    double pg1 = std::max(0.0, BTreeNonLeafPages(x, a, b) - 1.0);
    double qfw = ClustersForward(x, i, a, b);
    if (qfw > 0) {
      sum += 1.0 + Yao(qfw, pg1, pg1 * fanout) + 2.0 * Yao(qfw, ap, card);
    }
    double qbw = ClustersBackward(x, i, a, b);
    if (qbw > 0) {
      sum += 1.0 + Yao(qbw, pg1, pg1 * fanout) + 2.0 * Yao(qbw, ap, card);
    }
  }
  return sum;
}

double CostModel::UpdateCost(ExtensionKind x, uint32_t i,
                             const Decomposition& dec) const {
  // §6: update the object itself (3 accesses per the paper), search for the
  // affected paths, then update the access relation partitions.
  return 3.0 + UpdateSearchCost(x, i, dec) + UpdateTreeCost(x, i, dec);
}

}  // namespace asr::cost
