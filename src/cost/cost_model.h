// The complete analytical cost model of the paper (Sections 4-6).
//
// Every public method cites the equation or subsection it implements. All
// quantities are expected values in units of objects, tuples, bytes, pages,
// or secondary-storage page accesses; they are doubles throughout because
// the model composes probabilities with counts.
//
// Position indices i, j always refer to path positions 0..n (the paper notes
// the general case with set occurrences follows by reading n as m, §3).
#ifndef ASR_COST_COST_MODEL_H_
#define ASR_COST_COST_MODEL_H_

#include <unordered_map>
#include <vector>

#include "asr/decomposition.h"
#include "asr/extension.h"
#include "cost/profile.h"

namespace asr::cost {

using asr::Decomposition;
using asr::ExtensionKind;

enum class QueryDirection { kForward, kBackward };

class CostModel {
 public:
  CostModel(ApplicationProfile profile, SystemParameters system = {});

  const ApplicationProfile& profile() const { return profile_; }
  const SystemParameters& system() const { return system_; }
  uint32_t n() const { return profile_.n; }

  // --- Derived quantities (§4.1) -----------------------------------------
  double c(uint32_t i) const { return profile_.c[i]; }
  double d(uint32_t i) const { return profile_.d[i]; }
  double fan(uint32_t i) const { return profile_.fan[i]; }
  double size(uint32_t i) const { return profile_.size[i]; }

  // shar_i = d_i * fan_i / c_{i+1} unless overridden (Fig. 3).
  double shar(uint32_t i) const;
  // e_i = d_{i-1} * fan_{i-1} / shar_{i-1}, 1 <= i <= n (Fig. 3).
  double e(uint32_t i) const;
  // ref_i = d_i * fan_i (Fig. 3).
  double ref(uint32_t i) const { return d(i) * fan(i); }
  // P_{A_i} = d_i / c_i (Eq. 1).
  double PA(uint32_t i) const { return d(i) / c(i); }
  // P_{H_i} = e_i / c_i (Eq. 2).
  double PH(uint32_t i) const { return e(i) / c(i); }

  // RefBy(i, j): objects in t_j referenced by some object in t_i via at
  // least one partial path (Eq. 6). RefBy(i, i) := c_i for convenience.
  double RefBy(uint32_t i, uint32_t j) const;
  // P_RefBy(i, j) (Eq. 7).
  double PRefBy(uint32_t i, uint32_t j) const;
  // Ref(i, j): objects of t_i with a path to some object of t_j (Eq. 8).
  double Ref(uint32_t i, uint32_t j) const;
  // P_Ref(i, j) (Eq. 9).
  double PRef(uint32_t i, uint32_t j) const;
  // path(i, j): number of paths between t_i and t_j objects (Eq. 10).
  double PathCount(uint32_t i, uint32_t j) const;

  // Three-argument variants anchored at a k-element subset (Eqs. 29, 30).
  // RefBy(i, j, k): t_j objects on a partial path from a k-subset of t_i.
  double RefBy(uint32_t i, uint32_t j, double k) const;
  // Ref(i, j, k): t_i objects with a path to a k-subset of t_j.
  double Ref(uint32_t i, uint32_t j, double k) const;

  // Yao's function y(k, m, n): pages touched when k of n records spread
  // over m pages are retrieved (§5.6).
  static double Yao(double k, double m, double n);

  // P_lb / P_rb (Eqs. 11, 12).
  double Plb(uint32_t i, uint32_t j) const;
  double Prb(uint32_t i, uint32_t j) const;

  // --- Cardinalities and storage (§4.2, §4.3) ------------------------------
  // #E_X^{i,j}: expected tuples in partition [i..j] of extension X.
  double Cardinality(ExtensionKind x, uint32_t i, uint32_t j) const;

  // ats (Eq. 13), atpp (Eq. 14).
  double TupleBytes(uint32_t i, uint32_t j) const;
  double TuplesPerPage(uint32_t i, uint32_t j) const;
  // as (Eq. 15), ap (Eq. 16).
  double PartitionBytes(ExtensionKind x, uint32_t i, uint32_t j) const;
  double PartitionPages(ExtensionKind x, uint32_t i, uint32_t j) const;

  // Total bytes of the whole access relation under a decomposition
  // (non-redundant representation, as plotted in Figs. 4/5).
  double TotalBytes(ExtensionKind x, const Decomposition& dec) const;

  // --- Object and B+ tree pages (§5.5) -----------------------------------
  // opp_i (Eq. 17), op_i (Eq. 18).
  double ObjectsPerPage(uint32_t i) const;
  double ObjectPages(uint32_t i) const;
  // ht (Eq. 19), pg (Eq. 20).
  double BTreeHeight(ExtensionKind x, uint32_t i, uint32_t j) const;
  double BTreeNonLeafPages(ExtensionKind x, uint32_t i, uint32_t j) const;
  // nlp (Eqs. 21-24) and Rnlp (Eqs. 25-28): leaf pages per key value of the
  // forward- and reverse-clustered tree respectively.
  double LeafPagesPerValue(ExtensionKind x, uint32_t i, uint32_t j) const;
  double RevLeafPagesPerValue(ExtensionKind x, uint32_t i, uint32_t j) const;

  // --- Query costs (§5.6-§5.8) ---------------------------------------------
  // Qnas (Eqs. 31, 32): page accesses without access support.
  double QueryNoSupport(QueryDirection dir, uint32_t i, uint32_t j) const;
  // Qsup (Eqs. 33, 34): page accesses using the access support relation.
  double QuerySupported(ExtensionKind x, QueryDirection dir, uint32_t i,
                        uint32_t j, const Decomposition& dec) const;
  // Q (Eq. 35): dispatches to Qsup or Qnas depending on extension coverage.
  double QueryCost(ExtensionKind x, QueryDirection dir, uint32_t i,
                   uint32_t j, const Decomposition& dec) const;

  // --- Update costs (§6) -----------------------------------------------------
  // P_Path / P_NoPath (Eqs. 37, 38).
  double PPath(uint32_t l) const;
  double PNoPath(uint32_t l) const;
  // search_X^i (Eq. 36): locating the new paths for ins_i.
  double UpdateSearchCost(ExtensionKind x, uint32_t i,
                          const Decomposition& dec) const;
  // Cluster counts qfw/qbw (§6.2.1-§6.2.4).
  double ClustersForward(ExtensionKind x, uint32_t i, uint32_t lo,
                         uint32_t hi) const;
  double ClustersBackward(ExtensionKind x, uint32_t i, uint32_t lo,
                          uint32_t hi) const;
  // aup_X^i (§6.2): updating the partition B+ trees.
  double UpdateTreeCost(ExtensionKind x, uint32_t i,
                        const Decomposition& dec) const;
  // Full cost of ins_i: 3 (object update) + search + aup (§6).
  double UpdateCost(ExtensionKind x, uint32_t i,
                    const Decomposition& dec) const;
  // ins_i without any access relation: just the object update.
  double UpdateCostNoSupport() const { return 3.0; }

 private:
  ApplicationProfile profile_;
  SystemParameters system_;
  std::vector<double> shar_;
  std::vector<double> e_;
};

}  // namespace asr::cost

#endif  // ASR_COST_COST_MODEL_H_
