// Application and system parameters of the analytical cost model (Fig. 3).
#ifndef ASR_COST_PROFILE_H_
#define ASR_COST_PROFILE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace asr::cost {

// System-specific parameters (Fig. 3, lower table).
struct SystemParameters {
  double page_size = 4056;  // net page size in bytes
  double oid_size = 8;      // size of object identifiers
  double pp_size = 4;       // size of a page pointer

  // Fan-out of the B+ tree: floor(PageSize / (PPsize + OIDsize)).
  double BTreeFanOut() const {
    return static_cast<double>(
        static_cast<uint64_t>(page_size / (pp_size + oid_size)));
  }
};

// Application-specific parameters (Fig. 3, upper table) describing one path
// expression t0.A1.....An over an object base.
//
// Index conventions (matching the paper):
//   c[i]    i in [0, n]   — total number of objects of type t_i
//   d[i]    i in [0, n-1] — objects of t_i whose A_{i+1} is not NULL
//   fan[i]  i in [0, n-1] — avg references emanating from o_i.A_{i+1}
//   size[i] i in [0, n]   — average object size in bytes
//   shar[i] i in [0, n-1] — avg objects of t_i referencing the same t_{i+1}
//                           object; defaults to d_i*fan_i/c_{i+1} when empty
struct ApplicationProfile {
  uint32_t n = 0;
  std::vector<double> c;
  std::vector<double> d;
  std::vector<double> fan;
  std::vector<double> size;
  std::vector<double> shar;  // optional; empty = paper's default

  Status Validate() const {
    if (n < 1) return Status::InvalidArgument("profile needs n >= 1");
    if (c.size() != n + 1 || d.size() != n || fan.size() != n) {
      return Status::InvalidArgument(
          "profile arity mismatch: need |c|=n+1, |d|=n, |fan|=n");
    }
    if (!size.empty() && size.size() != n + 1) {
      return Status::InvalidArgument("profile needs |size|=n+1 when given");
    }
    if (!shar.empty() && shar.size() != n) {
      return Status::InvalidArgument("profile needs |shar|=n when given");
    }
    for (uint32_t i = 0; i <= n; ++i) {
      if (c[i] <= 0) return Status::InvalidArgument("c_i must be positive");
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (d[i] < 0 || d[i] > c[i]) {
        return Status::InvalidArgument("need 0 <= d_i <= c_i");
      }
      if (fan[i] <= 0) return Status::InvalidArgument("fan_i must be > 0");
    }
    return Status::OK();
  }
};

}  // namespace asr::cost

#endif  // ASR_COST_PROFILE_H_
