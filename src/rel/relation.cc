#include "rel/relation.h"

#include <algorithm>
#include <unordered_map>

namespace asr::rel {

namespace {

bool RowLess(const Row& a, const Row& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

Relation Relation::Join(const Relation& left, const Relation& right,
                        JoinKind kind) {
  ASR_CHECK(left.arity() >= 1 && right.arity() >= 1);
  Relation out(left.arity() + right.arity() - 1);

  // Hash the right operand on its first column. NULL keys are kept out of
  // the index — a NULL never joins — but their rows still participate as
  // unmatched rows for right/full outer joins.
  std::unordered_map<AsrKey, std::vector<size_t>> right_index;
  right_index.reserve(right.size());
  for (size_t i = 0; i < right.size(); ++i) {
    AsrKey key = right.rows()[i].front();
    if (!key.IsNull()) right_index[key].push_back(i);
  }

  const bool keep_left = (kind == JoinKind::kLeftOuter ||
                          kind == JoinKind::kFullOuter);
  const bool keep_right = (kind == JoinKind::kRightOuter ||
                           kind == JoinKind::kFullOuter);

  std::vector<bool> right_matched(right.size(), false);

  for (const Row& lrow : left.rows()) {
    AsrKey key = lrow.back();
    auto it = key.IsNull() ? right_index.end() : right_index.find(key);
    if (it != right_index.end()) {
      for (size_t ri : it->second) {
        right_matched[ri] = true;
        const Row& rrow = right.rows()[ri];
        Row combined;
        combined.reserve(out.arity());
        combined.insert(combined.end(), lrow.begin(), lrow.end());
        combined.insert(combined.end(), rrow.begin() + 1, rrow.end());
        out.AddRow(std::move(combined));
      }
    } else if (keep_left) {
      Row combined;
      combined.reserve(out.arity());
      combined.insert(combined.end(), lrow.begin(), lrow.end());
      combined.resize(out.arity(), AsrKey::Null());
      out.AddRow(std::move(combined));
    }
  }

  if (keep_right) {
    for (size_t ri = 0; ri < right.size(); ++ri) {
      if (right_matched[ri]) continue;
      const Row& rrow = right.rows()[ri];
      Row combined(left.arity() - 1, AsrKey::Null());
      combined.reserve(out.arity());
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      out.AddRow(std::move(combined));
    }
  }
  return out;
}

Relation Relation::Project(uint32_t first, uint32_t last) const {
  ASR_CHECK(first <= last && last < arity_);
  Relation out(last - first + 1);
  out.Reserve(rows_.size());
  for (const Row& row : rows_) {
    out.AddRow(Row(row.begin() + first, row.begin() + last + 1));
  }
  out.Normalize();
  return out;
}

void Relation::Normalize() {
  std::sort(rows_.begin(), rows_.end(), RowLess);
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  Relation a = *this;
  Relation b = other;
  a.Normalize();
  b.Normalize();
  return a.rows_ == b.rows_;
}

std::string Relation::ToString() const {
  std::string out;
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace asr::rel
