// Minimal in-memory relational kernel over AsrKey columns.
//
// Access support relation extensions are *defined* as joins of the auxiliary
// relations E_0 ... E_{n-1} (Defs. 3.4-3.7):
//   canonical      E_0 |><| E_1 |><| ... (natural joins)
//   full           full outer joins
//   left-complete  left outer joins, left associated
//   right-complete right outer joins, right associated
// all joining the LAST column of the left operand with the FIRST column of
// the right operand. This module implements exactly those operators with the
// paper's NULL semantics: a NULL join value never matches anything, and
// unmatched rows are padded with NULLs on the dangling side.
//
// Decomposition partitions (Def. 3.8) are column-range projections with
// duplicate elimination ("materialized by projecting the corresponding
// attributes").
#ifndef ASR_REL_RELATION_H_
#define ASR_REL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/asr_key.h"
#include "common/macros.h"

namespace asr::rel {

using Row = std::vector<AsrKey>;

enum class JoinKind {
  kNatural,     // |><|  : only matching pairs
  kLeftOuter,   // =|><| : plus left rows without partner, right side NULL
  kRightOuter,  // |><|= : plus right rows without partner, left side NULL
  kFullOuter,   // =|><|=: both
};

class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Row>& rows() const { return rows_; }

  void AddRow(Row row) {
    ASR_DCHECK(row.size() == arity_);
    rows_.push_back(std::move(row));
  }

  void Reserve(size_t n) { rows_.reserve(n); }

  // Joins the last column of `left` with the first column of `right`.
  // Result arity = left.arity + right.arity - 1 (the join column appears
  // once). NULL join values never match; padding NULLs fill the dangling
  // side of unmatched rows.
  static Relation Join(const Relation& left, const Relation& right,
                       JoinKind kind);

  // Projection to the inclusive column range [first, last], with duplicate
  // elimination (relations are sets).
  Relation Project(uint32_t first, uint32_t last) const;

  // Sorts rows lexicographically and removes duplicates (canonical form for
  // comparisons).
  void Normalize();

  // Set equality after normalization of copies.
  bool EqualsAsSet(const Relation& other) const;

  // Debug rendering, one row per line.
  std::string ToString() const;

 private:
  uint32_t arity_;
  std::vector<Row> rows_;
};

}  // namespace asr::rel

#endif  // ASR_REL_RELATION_H_
