// Physical design advisor: the application of the cost model the paper
// proposes in §7 — "for a recorded database usage pattern the system could
// (semi-)automatically adjust the physical database design".
//
// Given an application profile and an operation mix, the advisor enumerates
// the full design space (4 extensions x all 2^(n-1) decompositions) and
// ranks the designs by expected page accesses per operation.
#ifndef ASR_ADVISOR_ADVISOR_H_
#define ASR_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/opmix.h"

namespace asr::advisor {

struct DesignChoice {
  ExtensionKind kind = ExtensionKind::kFull;
  Decomposition decomposition = Decomposition::None(1);
  // Expected page accesses per operation of the mix.
  double cost = 0.0;
  // cost / cost-without-any-access-relation; < 1 means the design pays off.
  double normalized = 0.0;
  // Bytes of the (non-redundant) access relation under this design.
  double storage_bytes = 0.0;

  std::string ToString() const;
};

class DesignAdvisor {
 public:
  // All designs, best (lowest cost) first.
  static std::vector<DesignChoice> Rank(const cost::CostModel& model,
                                        const cost::OperationMix& mix,
                                        double p_up);

  // The single best design.
  static DesignChoice Best(const cost::CostModel& model,
                           const cost::OperationMix& mix, double p_up);

  // Best design subject to a storage budget in bytes (0 = unlimited).
  static DesignChoice BestWithinBudget(const cost::CostModel& model,
                                       const cost::OperationMix& mix,
                                       double p_up, double max_bytes);
};

}  // namespace asr::advisor

#endif  // ASR_ADVISOR_ADVISOR_H_
