#include "advisor/auto_tuner.h"

namespace asr::advisor {

Result<TuningResult> AutoTuner::Tune(gom::ObjectStore* store,
                                     const PathExpression& path,
                                     const workload::UsageRecorder& recorder,
                                     const Options& options) {
  if (recorder.operation_count() == 0) {
    return Status::InvalidArgument(
        "no recorded operations: nothing to tune against");
  }
  TuningResult result;
  Result<cost::ApplicationProfile> profile =
      workload::EstimateProfile(store, path);
  ASR_RETURN_IF_ERROR(profile.status());
  result.measured_profile = std::move(*profile);
  result.update_probability = recorder.UpdateProbability();

  cost::CostModel model(result.measured_profile);
  cost::OperationMix mix = recorder.ToMix();
  result.chosen = DesignAdvisor::BestWithinBudget(
      model, mix, result.update_probability, options.max_storage_bytes);

  if (options.materialize) {
    AsrOptions build_options;
    build_options.build_threads = options.build_threads;
    build_options.fill_factor = options.fill_factor;
    Result<std::unique_ptr<AccessSupportRelation>> asr =
        AccessSupportRelation::Build(store, path, result.chosen.kind,
                                     result.chosen.decomposition,
                                     build_options);
    ASR_RETURN_IF_ERROR(asr.status());
    result.asr = std::move(*asr);
  }
  return result;
}

}  // namespace asr::advisor
