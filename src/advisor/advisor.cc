#include "advisor/advisor.h"

#include <algorithm>
#include <cstdio>

namespace asr::advisor {

std::string DesignChoice::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-5s %-18s cost=%10.2f normalized=%7.4f storage=%.0f bytes",
                ExtensionKindName(kind).c_str(),
                decomposition.ToString().c_str(), cost, normalized,
                storage_bytes);
  return buf;
}

std::vector<DesignChoice> DesignAdvisor::Rank(const cost::CostModel& model,
                                              const cost::OperationMix& mix,
                                              double p_up) {
  std::vector<DesignChoice> out;
  const double base = cost::MixCostNoSupport(model, mix, p_up);
  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    for (const Decomposition& dec : Decomposition::EnumerateAll(model.n())) {
      DesignChoice choice;
      choice.kind = kind;
      choice.decomposition = dec;
      choice.cost = cost::MixCost(model, kind, dec, mix, p_up);
      choice.normalized = base > 0 ? choice.cost / base : 0.0;
      choice.storage_bytes = model.TotalBytes(kind, dec);
      out.push_back(std::move(choice));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DesignChoice& a, const DesignChoice& b) {
              return a.cost < b.cost;
            });
  return out;
}

DesignChoice DesignAdvisor::Best(const cost::CostModel& model,
                                 const cost::OperationMix& mix, double p_up) {
  std::vector<DesignChoice> ranked = Rank(model, mix, p_up);
  ASR_CHECK(!ranked.empty());
  return ranked.front();
}

DesignChoice DesignAdvisor::BestWithinBudget(const cost::CostModel& model,
                                             const cost::OperationMix& mix,
                                             double p_up, double max_bytes) {
  std::vector<DesignChoice> ranked = Rank(model, mix, p_up);
  ASR_CHECK(!ranked.empty());
  if (max_bytes <= 0) return ranked.front();
  for (const DesignChoice& choice : ranked) {
    if (choice.storage_bytes <= max_bytes) return choice;
  }
  // Nothing fits: fall back to the leanest design (cheapest among ties).
  const DesignChoice* leanest = &ranked.front();
  for (const DesignChoice& choice : ranked) {
    if (choice.storage_bytes < leanest->storage_bytes) leanest = &choice;
  }
  return *leanest;
}

}  // namespace asr::advisor
