// Self-tuning loop from the paper's conclusion (§7): measure the live
// object base, take the recorded usage pattern, run the cost model over the
// whole design space, and materialize the winning access support relation.
#ifndef ASR_ADVISOR_AUTO_TUNER_H_
#define ASR_ADVISOR_AUTO_TUNER_H_

#include <memory>

#include "advisor/advisor.h"
#include "asr/access_support_relation.h"
#include "workload/profile_estimator.h"
#include "workload/usage_recorder.h"

namespace asr::advisor {

struct TuningResult {
  cost::ApplicationProfile measured_profile;
  double update_probability = 0.0;
  DesignChoice chosen;
  // The materialized ASR for the chosen design (null when materialize was
  // false or no operations were recorded).
  std::unique_ptr<AccessSupportRelation> asr;
};

class AutoTuner {
 public:
  struct Options {
    // Build the winning ASR immediately (costs one extension computation).
    bool materialize = true;
    // Storage budget in bytes; 0 = unlimited.
    double max_storage_bytes = 0;
    // Passed through to the materializing Build: the winner is packed by
    // sorted bulk load, on this many workers.
    uint32_t build_threads = 1;
    double fill_factor = btree::BTree::kDefaultFillFactor;
  };

  // Estimates the profile from `store`, converts the recorder's history into
  // an operation mix, ranks all designs, and (optionally) builds the winner.
  static Result<TuningResult> Tune(gom::ObjectStore* store,
                                   const PathExpression& path,
                                   const workload::UsageRecorder& recorder,
                                   const Options& options);
  static Result<TuningResult> Tune(gom::ObjectStore* store,
                                   const PathExpression& path,
                                   const workload::UsageRecorder& recorder) {
    return Tune(store, path, recorder, Options());
  }
};

}  // namespace asr::advisor

#endif  // ASR_ADVISOR_AUTO_TUNER_H_
