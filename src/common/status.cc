#include "common/status.h"

namespace asr {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kTypeError:
      return "TypeError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace asr
