// AsrKey: a fixed-width (8-byte) tagged value that can appear as a column of
// an access support relation tuple.
//
// Per Def. 3.2/3.3 an ASR column holds object identifiers; the terminal
// column holds the atomic value of A_n when its range type is atomic
// (footnote 3). Outer-join based extensions additionally introduce NULLs
// (Defs. 3.5-3.7). AsrKey encodes all three cases in one 64-bit word so ASR
// tuples stay fixed width and the paper's size formula ats = OIDsize *
// (#columns) (Eq. 13) holds exactly.
//
// Encoding (tag = top 2 bits):
//   00  OID (raw word; the all-zero word is the NULL key)
//   01  inline signed integer, 62-bit two's-complement payload
//   10  interned string, dictionary code in the low 32 bits
//   11  reserved
// OIDs therefore must have type_id < 2^22, which Oid::Make verifies via the
// factory below; with 24 bits reserved for type ids this costs nothing in
// practice.
#ifndef ASR_COMMON_ASR_KEY_H_
#define ASR_COMMON_ASR_KEY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/macros.h"
#include "common/oid.h"
#include "common/string_dict.h"

namespace asr {

class AsrKey {
 public:
  enum class Tag { kOid = 0, kInt = 1, kString = 2 };

  constexpr AsrKey() : raw_(0) {}

  static constexpr AsrKey Null() { return AsrKey(); }

  static AsrKey FromOid(Oid oid) {
    ASR_DCHECK((oid.raw() >> 62) == 0);
    return AsrKey(oid.raw());
  }

  // `v` must fit in 62 bits (covers any realistic integer/decimal payload).
  static AsrKey FromInt(int64_t v) {
    ASR_DCHECK(v >= kMinInt && v <= kMaxInt);
    return AsrKey((uint64_t{1} << 62) |
                  (static_cast<uint64_t>(v) & kPayloadMask));
  }

  static AsrKey FromStringCode(uint32_t code) {
    return AsrKey((uint64_t{2} << 62) | code);
  }

  static AsrKey FromString(std::string_view s, StringDict* dict) {
    return FromStringCode(dict->Intern(s));
  }

  static constexpr AsrKey FromRaw(uint64_t raw) { return AsrKey(raw); }

  constexpr bool IsNull() const { return raw_ == 0; }
  constexpr Tag tag() const { return static_cast<Tag>(raw_ >> 62); }
  constexpr bool IsOid() const { return tag() == Tag::kOid && !IsNull(); }
  constexpr bool IsInt() const { return tag() == Tag::kInt; }
  constexpr bool IsString() const { return tag() == Tag::kString; }

  Oid ToOid() const {
    ASR_DCHECK(tag() == Tag::kOid);
    return Oid::FromRaw(raw_);
  }

  int64_t ToInt() const {
    ASR_DCHECK(IsInt());
    // Sign-extend the 62-bit payload.
    return static_cast<int64_t>(raw_ << 2) >> 2;
  }

  uint32_t ToStringCode() const {
    ASR_DCHECK(IsString());
    return static_cast<uint32_t>(raw_ & 0xFFFFFFFFu);
  }

  constexpr uint64_t raw() const { return raw_; }

  friend constexpr bool operator==(AsrKey a, AsrKey b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(AsrKey a, AsrKey b) {
    return a.raw_ != b.raw_;
  }
  // Total order used by B+ trees: NULL first, then OIDs, ints, strings.
  friend constexpr bool operator<(AsrKey a, AsrKey b) {
    return a.raw_ < b.raw_;
  }
  friend constexpr bool operator<=(AsrKey a, AsrKey b) {
    return a.raw_ <= b.raw_;
  }

  // Renders for debugging: "NULL", OID form, "#42", or "str:<code>".
  std::string ToString() const;

  static constexpr int64_t kMaxInt = (int64_t{1} << 61) - 1;
  static constexpr int64_t kMinInt = -(int64_t{1} << 61);

 private:
  static constexpr uint64_t kPayloadMask = (uint64_t{1} << 62) - 1;

  explicit constexpr AsrKey(uint64_t raw) : raw_(raw) {}

  uint64_t raw_;
};

}  // namespace asr

template <>
struct std::hash<asr::AsrKey> {
  size_t operator()(asr::AsrKey k) const noexcept {
    uint64_t x = k.raw() + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

#endif  // ASR_COMMON_ASR_KEY_H_
