// Little-endian binary stream helpers for the database snapshot format.
#ifndef ASR_COMMON_BINARY_IO_H_
#define ASR_COMMON_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"

namespace asr::io {

template <typename T>
void WriteScalar(std::ostream* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
Result<T> ReadScalar(std::istream* in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  in->read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in->good()) {
    return Status::Corruption("unexpected end of snapshot stream");
  }
  return value;
}

inline void WriteString(std::ostream* out, const std::string& s) {
  WriteScalar<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline Result<std::string> ReadString(std::istream* in) {
  Result<uint32_t> len = ReadScalar<uint32_t>(in);
  ASR_RETURN_IF_ERROR(len.status());
  if (*len > (1u << 28)) {
    return Status::Corruption("implausible string length in snapshot");
  }
  std::string s(*len, '\0');
  in->read(s.data(), *len);
  if (!in->good() && *len > 0) {
    return Status::Corruption("unexpected end of snapshot stream");
  }
  return s;
}

}  // namespace asr::io

#endif  // ASR_COMMON_BINARY_IO_H_
