#include "common/random.h"

#include <unordered_set>

namespace asr {

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  ASR_CHECK(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over [0, n).
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + Uniform(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<uint64_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    uint64_t x = Uniform(n);
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

}  // namespace asr
