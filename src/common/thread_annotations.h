// Thread-safety annotations: which mutex protects which state, in a form
// both compilers and tools/asrlint can check.
//
// Under clang the macros expand to the thread-safety-analysis attributes
// (-Wthread-safety); under gcc they expand to nothing. Either way the macro
// names themselves stay in the source text, which is what tools/asrlint's
// lock-discipline rule keys on — so the discipline is machine-checked even
// on the gcc-only CI image.
//
// Usage:
//   std::deque<Event> ring_ ASR_GUARDED_BY(mu_);   // field needs mu_ held
//   void EvictFrame(PageId id) ASR_REQUIRES(mu_);  // caller must hold mu_
//   void Stop() ASR_EXCLUDES(mu_);                 // caller must NOT hold it
//
// A method that accesses an ASR_GUARDED_BY(m) field must either construct a
// lock on m (lock_guard/unique_lock/shared_lock/scoped_lock) or be declared
// ASR_REQUIRES(m). Constructors and destructors are exempt (no concurrent
// access before the object is published or after teardown begins).
#ifndef ASR_COMMON_THREAD_ANNOTATIONS_H_
#define ASR_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define ASR_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define ASR_THREAD_ANNOTATION_IMPL(x)
#endif

// Field is protected by the given mutex.
#define ASR_GUARDED_BY(m) ASR_THREAD_ANNOTATION_IMPL(guarded_by(m))

// Pointer field: the pointee (not the pointer) is protected by the mutex.
#define ASR_PT_GUARDED_BY(m) ASR_THREAD_ANNOTATION_IMPL(pt_guarded_by(m))

// Function requires the listed mutexes to be held by the caller.
#define ASR_REQUIRES(...) \
  ASR_THREAD_ANNOTATION_IMPL(exclusive_locks_required(__VA_ARGS__))

// Function must be called with the listed mutexes NOT held (it acquires
// them itself; calling with one held would self-deadlock).
#define ASR_EXCLUDES(...) ASR_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

#endif  // ASR_COMMON_THREAD_ANNOTATIONS_H_
