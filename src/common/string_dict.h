// Interning dictionary mapping strings to dense 32-bit codes.
//
// Access support relation columns must be fixed width (the paper's tuple-size
// formula ats = OIDsize * (j - i + 1), Eq. 13, assumes 8 bytes per column).
// Atomic string values that terminate a path (footnote 3: "if t_j is an
// atomic type then id(o_j) corresponds to the value o_j.A_j") are therefore
// interned here and carried as codes inside AsrKey.
#ifndef ASR_COMMON_STRING_DICT_H_
#define ASR_COMMON_STRING_DICT_H_

#include <cstdint>
#include <deque>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/macros.h"
#include "common/status.h"

namespace asr {

class StringDict {
 public:
  StringDict() = default;
  ASR_DISALLOW_COPY_AND_ASSIGN(StringDict);

  // Returns the code for `s`, interning it on first use.
  uint32_t Intern(std::string_view s);

  // Returns the code for `s` or kNotFound when never interned.
  uint32_t Lookup(std::string_view s) const;

  // Inverse mapping; `code` must have been returned by Intern.
  const std::string& Get(uint32_t code) const;

  size_t size() const { return strings_.size(); }

  // Snapshot support: codes are preserved (strings written in code order).
  void Serialize(std::ostream* out) const;
  Status Deserialize(std::istream* in);

  static constexpr uint32_t kNotFound = UINT32_MAX;

 private:
  // deque keeps string addresses stable so index_ keys can view into it.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace asr

#endif  // ASR_COMMON_STRING_DICT_H_
