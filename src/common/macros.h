// Common assertion and class-property macros used across the library.
#ifndef ASR_COMMON_MACROS_H_
#define ASR_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Fatal check, enabled in all build modes. Use for invariants whose violation
// would corrupt on-disk (simulated) state.
#define ASR_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ASR_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Debug-only check for programming errors on hot paths.
#ifndef NDEBUG
#define ASR_DCHECK(cond) ASR_CHECK(cond)
#else
#define ASR_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#define ASR_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

// -DASR_PARANOID=ON (CMake) defines ASR_PARANOID_ENABLED=1, compiling
// invariant validation into the ASR maintenance commit points.
#ifndef ASR_PARANOID_ENABLED
#define ASR_PARANOID_ENABLED 0
#endif

#endif  // ASR_COMMON_MACROS_H_
