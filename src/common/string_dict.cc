#include "common/string_dict.h"

#include "common/binary_io.h"

namespace asr {

uint32_t StringDict::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  ASR_CHECK(strings_.size() < kNotFound);
  uint32_t code = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), code);
  return code;
}

uint32_t StringDict::Lookup(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& StringDict::Get(uint32_t code) const {
  ASR_CHECK(code < strings_.size());
  return strings_[code];
}

void StringDict::Serialize(std::ostream* out) const {
  io::WriteScalar<uint32_t>(out, static_cast<uint32_t>(strings_.size()));
  for (const std::string& s : strings_) io::WriteString(out, s);
}

Status StringDict::Deserialize(std::istream* in) {
  ASR_CHECK(strings_.empty());
  Result<uint32_t> count = io::ReadScalar<uint32_t>(in);
  ASR_RETURN_IF_ERROR(count.status());
  for (uint32_t i = 0; i < *count; ++i) {
    Result<std::string> s = io::ReadString(in);
    ASR_RETURN_IF_ERROR(s.status());
    Intern(*s);
  }
  return Status::OK();
}

}  // namespace asr
