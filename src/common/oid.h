// Object identifiers (OIDs) of the Generic Object Model.
//
// An OID is invariant for the lifetime of an object and invisible to the
// database user (paper §2, "object identity"). We encode the owning type in
// the upper bits so the store can route an OID to its type segment without a
// lookup; this mirrors typical OODB surrogate layouts and keeps OIDs at the
// paper's OIDsize = 8 bytes.
#ifndef ASR_COMMON_OID_H_
#define ASR_COMMON_OID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace asr {

// Index of a type in the schema's type registry.
using TypeId = uint32_t;

inline constexpr TypeId kInvalidTypeId = 0xFFFFFFFFu;

// 8-byte object identifier: 24-bit type id, 40-bit per-type sequence number.
// The all-zero OID is reserved as the NULL reference.
class Oid {
 public:
  static constexpr uint64_t kTypeBits = 24;
  static constexpr uint64_t kSeqBits = 40;
  static constexpr uint64_t kSeqMask = (uint64_t{1} << kSeqBits) - 1;

  constexpr Oid() : raw_(0) {}

  // Builds an OID from a type id and a 1-based per-type sequence number.
  static constexpr Oid Make(TypeId type_id, uint64_t seq) {
    return Oid((static_cast<uint64_t>(type_id) << kSeqBits) |
               (seq & kSeqMask));
  }

  static constexpr Oid Null() { return Oid(); }

  static constexpr Oid FromRaw(uint64_t raw) { return Oid(raw); }

  constexpr bool IsNull() const { return raw_ == 0; }
  constexpr TypeId type_id() const {
    return static_cast<TypeId>(raw_ >> kSeqBits);
  }
  constexpr uint64_t seq() const { return raw_ & kSeqMask; }
  constexpr uint64_t raw() const { return raw_; }

  friend constexpr bool operator==(Oid a, Oid b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Oid a, Oid b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Oid a, Oid b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator<=(Oid a, Oid b) { return a.raw_ <= b.raw_; }
  friend constexpr bool operator>(Oid a, Oid b) { return a.raw_ > b.raw_; }
  friend constexpr bool operator>=(Oid a, Oid b) { return a.raw_ >= b.raw_; }

  // Renders as "tT.sS" (e.g. "t3.s17") or "NULL".
  std::string ToString() const;

 private:
  explicit constexpr Oid(uint64_t raw) : raw_(raw) {}

  uint64_t raw_;
};

}  // namespace asr

template <>
struct std::hash<asr::Oid> {
  size_t operator()(asr::Oid oid) const noexcept {
    // splitmix64-style finalizer: OIDs are sequential, so mix the bits.
    uint64_t x = oid.raw() + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

#endif  // ASR_COMMON_OID_H_
