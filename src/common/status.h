// RocksDB-style Status and Result<T> used for recoverable errors throughout
// the library. Exceptions are not used on any library path.
#ifndef ASR_COMMON_STATUS_H_
#define ASR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace asr {

// Outcome of an operation that can fail for data-dependent reasons.
// [[nodiscard]]: silently dropping a Status is exactly the failure mode the
// invariant checker exists to catch after the fact — make it a compile error
// up front.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kAlreadyExists,
    kTypeError,
    kCorruption,
    kNotSupported,
    kOutOfRange,
    kIOError,
    kAborted,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(Code::kTypeError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  // A transaction lost its optimistic race (page-version conflict or store
  // claim): nothing was applied, and the operation is safe to retry.
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsTypeError() const { return code_ == Code::kTypeError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Value-or-Status. `value()` aborts if the result holds an error; check
// `ok()` (or propagate the status) first.
//
// Status-plus-optional representation rather than std::variant<T, Status>:
// the discriminant is the status code itself (absl::StatusOr's layout), the
// alternatives never overlap in one union, and — unlike the variant, whose
// inlined destructor GCC 12 cannot prove type-safe under -Wmaybe-
// uninitialized — it stays warning-clean under -Werror.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value)                              // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}
  Result(Status status)                        // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    ASR_DCHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    ASR_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    ASR_CHECK(ok());
    return *value_;
  }
  // By value on rvalues: keeps `for (x : f().value())` safe — a returned
  // reference would dangle once the temporary Result is destroyed.
  T value() && {
    ASR_CHECK(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;           // OK iff value_ is engaged
  std::optional<T> value_;
};

// Propagates a non-OK Status out of the enclosing function.
#define ASR_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::asr::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace asr

#endif  // ASR_COMMON_STATUS_H_
