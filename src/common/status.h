// RocksDB-style Status and Result<T> used for recoverable errors throughout
// the library. Exceptions are not used on any library path.
#ifndef ASR_COMMON_STATUS_H_
#define ASR_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace asr {

// Outcome of an operation that can fail for data-dependent reasons.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kAlreadyExists,
    kTypeError,
    kCorruption,
    kNotSupported,
    kOutOfRange,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(Code::kTypeError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsTypeError() const { return code_ == Code::kTypeError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Value-or-Status. `value()` aborts if the result holds an error; check
// `ok()` (or propagate the status) first.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {    // NOLINT(runtime/explicit)
    ASR_DCHECK(!std::get<Status>(state_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  T& value() & {
    ASR_CHECK(ok());
    return std::get<T>(state_);
  }
  const T& value() const& {
    ASR_CHECK(ok());
    return std::get<T>(state_);
  }
  // By value on rvalues: keeps `for (x : f().value())` safe — a returned
  // reference would dangle once the temporary Result is destroyed.
  T value() && {
    ASR_CHECK(ok());
    return std::get<T>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> state_;
};

// Propagates a non-OK Status out of the enclosing function.
#define ASR_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::asr::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace asr

#endif  // ASR_COMMON_STATUS_H_
