// Deterministic pseudo-random generator for workload synthesis and property
// tests. All experiments must be reproducible from a seed, so library code
// never uses std::random_device or global RNG state.
#ifndef ASR_COMMON_RANDOM_H_
#define ASR_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace asr {

// xoshiro256**; fast, high-quality, and stable across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    ASR_DCHECK(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next()) * n;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    ASR_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // k distinct indices drawn uniformly from [0, n). k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace asr

#endif  // ASR_COMMON_RANDOM_H_
