#include "common/oid.h"

namespace asr {

std::string Oid::ToString() const {
  if (IsNull()) return "NULL";
  return "t" + std::to_string(type_id()) + ".s" + std::to_string(seq());
}

}  // namespace asr
