#include "common/asr_key.h"

namespace asr {

std::string AsrKey::ToString() const {
  if (IsNull()) return "NULL";
  switch (tag()) {
    case Tag::kOid:
      return ToOid().ToString();
    case Tag::kInt:
      return "#" + std::to_string(ToInt());
    case Tag::kString:
      return "str:" + std::to_string(ToStringCode());
  }
  return "?";
}

}  // namespace asr
