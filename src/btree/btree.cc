#include "btree/btree.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace asr::btree {

namespace {

using storage::kPageSize;
using storage::Page;
using storage::PageGuard;
using storage::PageId;

constexpr uint32_t kHeaderBytes = 8;
constexpr uint32_t kInnerEntryBytes = 20;  // key u64 + fingerprint u64 + child u32
constexpr uint32_t kNoLeaf = UINT32_MAX;

// Header accessors shared by both node kinds.
bool IsLeaf(const Page& p) { return p.Read<uint8_t>(0) != 0; }
uint16_t Count(const Page& p) { return p.Read<uint16_t>(2); }
void SetCount(Page* p, uint16_t c) { p->Write<uint16_t>(2, c); }
uint32_t NextLeaf(const Page& p) { return p.Read<uint32_t>(4); }
void SetNextLeaf(Page* p, uint32_t n) { p->Write<uint32_t>(4, n); }
uint32_t Child0(const Page& p) { return p.Read<uint32_t>(4); }
void SetChild0(Page* p, uint32_t c) { p->Write<uint32_t>(4, c); }

// Internal node entry accessors.
struct InnerEntry {
  uint64_t key;
  uint64_t fingerprint;
  uint32_t child;
};

uint32_t InnerOffset(int i) {
  return kHeaderBytes + static_cast<uint32_t>(i) * kInnerEntryBytes;
}

InnerEntry GetInner(const Page& p, int i) {
  InnerEntry e;
  e.key = p.Read<uint64_t>(InnerOffset(i));
  e.fingerprint = p.Read<uint64_t>(InnerOffset(i) + 8);
  e.child = p.Read<uint32_t>(InnerOffset(i) + 16);
  return e;
}

void PutInner(Page* p, int i, const InnerEntry& e) {
  p->Write<uint64_t>(InnerOffset(i), e.key);
  p->Write<uint64_t>(InnerOffset(i) + 8, e.fingerprint);
  p->Write<uint32_t>(InnerOffset(i) + 16, e.child);
}

}  // namespace

BTree::BTree(storage::BufferManager* buffers, std::string name,
             uint32_t width, uint32_t key_column)
    : buffers_(buffers), width_(width), key_column_(key_column) {
  ASR_CHECK(width_ >= 1 && key_column_ < width_);
  leaf_entry_bytes_ = 8 + 8 * width_;
  leaf_capacity_ = (kPageSize - kHeaderBytes) / leaf_entry_bytes_;
  inner_capacity_ = (kPageSize - kHeaderBytes) / kInnerEntryBytes;
  ASR_CHECK(leaf_capacity_ >= 4);
  segment_ = buffers_->disk()->CreateSegment("btree:" + name);
  PageGuard root = buffers_->AllocatePinned(segment_);
  InitLeaf(&root.page());
  root.MarkDirty();
  root_page_ = root.id().page_no;
}

void BTree::InitLeaf(Page* page) {
  page->Zero();
  page->Write<uint8_t>(0, 1);
  SetCount(page, 0);
  SetNextLeaf(page, kNoLeaf);
}

void BTree::InitInternal(Page* page) {
  page->Zero();
  page->Write<uint8_t>(0, 0);
  SetCount(page, 0);
  SetChild0(page, kNoLeaf);
}

uint64_t BTree::Fingerprint(const std::vector<AsrKey>& tuple) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (AsrKey k : tuple) {
    h ^= k.raw();
    h *= 0x100000001B3ull;
    h ^= h >> 29;
  }
  // Avoid the reserved all-zero fingerprint so (0,0) is a safe -infinity.
  return h == 0 ? 1 : h;
}

BTree::CompositeKey BTree::KeyOf(const std::vector<AsrKey>& tuple) const {
  ASR_DCHECK(tuple.size() == width_);
  return CompositeKey{tuple[key_column_].raw(), Fingerprint(tuple)};
}

uint32_t BTree::DescendToLeaf(CompositeKey key, std::vector<uint32_t>* path) {
  descents_.Inc();
  uint32_t page_no = root_page_;
  while (true) {
    PageGuard guard = buffers_->Pin(PageId{segment_, page_no});
    const Page& page = guard.page();
    if (IsLeaf(page)) return page_no;
    inner_touches_.Inc();
    if (path != nullptr) path->push_back(page_no);
    uint16_t count = Count(page);
    // Find the first entry with entry key > key; descend into the child to
    // its left (child0 when there is none to the left).
    int lo = 0;
    int hi = count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      InnerEntry e = GetInner(page, mid);
      CompositeKey ek{e.key, e.fingerprint};
      if (key < ek) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    page_no = (lo == 0) ? Child0(page) : GetInner(page, lo - 1).child;
  }
}

namespace {

// In-memory image of one leaf entry.
struct LeafEntry {
  uint64_t fingerprint;
  std::vector<uint64_t> tuple;
};

uint32_t LeafOffset(uint32_t entry_bytes, int i) {
  return kHeaderBytes + static_cast<uint32_t>(i) * entry_bytes;
}

LeafEntry GetLeaf(const Page& p, uint32_t entry_bytes, uint32_t width, int i) {
  LeafEntry e;
  uint32_t off = LeafOffset(entry_bytes, i);
  e.fingerprint = p.Read<uint64_t>(off);
  e.tuple.resize(width);
  p.ReadBytes(off + 8, e.tuple.data(), 8 * width);
  return e;
}

void PutLeaf(Page* p, uint32_t entry_bytes, int i, const LeafEntry& e) {
  uint32_t off = LeafOffset(entry_bytes, i);
  p->Write<uint64_t>(off, e.fingerprint);
  p->WriteBytes(off + 8, e.tuple.data(), 8 * e.tuple.size());
}

// Shifts entries [from, count) one slot to the right.
void ShiftRight(Page* p, uint32_t entry_bytes, int from, int count) {
  for (int i = count - 1; i >= from; --i) {
    std::vector<std::byte> buf(entry_bytes);
    p->ReadBytes(LeafOffset(entry_bytes, i), buf.data(), entry_bytes);
    p->WriteBytes(LeafOffset(entry_bytes, i + 1), buf.data(), entry_bytes);
  }
}

// Shifts entries [from+1, count) one slot to the left (erasing `from`).
void ShiftLeft(Page* p, uint32_t entry_bytes, int from, int count) {
  for (int i = from; i < count - 1; ++i) {
    std::vector<std::byte> buf(entry_bytes);
    p->ReadBytes(LeafOffset(entry_bytes, i + 1), buf.data(), entry_bytes);
    p->WriteBytes(LeafOffset(entry_bytes, i), buf.data(), entry_bytes);
  }
}

}  // namespace

bool BTree::Insert(const std::vector<AsrKey>& tuple) {
  ASR_CHECK(tuple.size() == width_);
  CompositeKey key = KeyOf(tuple);
  std::vector<uint32_t> path;
  uint32_t leaf_no = DescendToLeaf(key, &path);
  PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
  leaf_touches_.Inc();
  uint16_t count = Count(leaf.page());

  // Position = first entry >= key (lower bound).
  int lo = 0;
  int hi = count;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    LeafEntry e = GetLeaf(leaf.page(), leaf_entry_bytes_, width_, mid);
    CompositeKey ek{e.tuple[key_column_], e.fingerprint};
    if (ek < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Scan the run of equal composite keys (fingerprint collisions) for the
  // identical tuple; set semantics make re-insertion a no-op. A run never
  // crosses a leaf boundary for practical purposes: equal composite keys are
  // equal tuples except under 64-bit fingerprint collision.
  for (int i = lo; i < count; ++i) {
    LeafEntry e = GetLeaf(leaf.page(), leaf_entry_bytes_, width_, i);
    CompositeKey ek{e.tuple[key_column_], e.fingerprint};
    if (key < ek) break;
    bool same = true;
    for (uint32_t c = 0; c < width_; ++c) {
      if (e.tuple[c] != tuple[c].raw()) {
        same = false;
        break;
      }
    }
    if (same) return false;
  }

  LeafEntry entry;
  entry.fingerprint = key.fingerprint;
  entry.tuple.resize(width_);
  for (uint32_t c = 0; c < width_; ++c) entry.tuple[c] = tuple[c].raw();

  if (count < leaf_capacity_) {
    ShiftRight(&leaf.page(), leaf_entry_bytes_, lo, count);
    PutLeaf(&leaf.page(), leaf_entry_bytes_, lo, entry);
    SetCount(&leaf.page(), static_cast<uint16_t>(count + 1));
    leaf.MarkDirty();
    ++tuple_count_;
    return true;
  }

  // Split: gather all count+1 entries, give the upper half to a new leaf.
  std::vector<LeafEntry> all;
  all.reserve(count + 1);
  for (int i = 0; i < count; ++i) {
    all.push_back(GetLeaf(leaf.page(), leaf_entry_bytes_, width_, i));
  }
  all.insert(all.begin() + lo, entry);

  uint32_t mid = static_cast<uint32_t>(all.size()) / 2;
  PageGuard right = buffers_->AllocatePinned(segment_);
  InitLeaf(&right.page());
  SetNextLeaf(&right.page(), NextLeaf(leaf.page()));
  SetNextLeaf(&leaf.page(), right.id().page_no);

  for (uint32_t i = 0; i < mid; ++i) {
    PutLeaf(&leaf.page(), leaf_entry_bytes_, static_cast<int>(i), all[i]);
  }
  SetCount(&leaf.page(), static_cast<uint16_t>(mid));
  for (uint32_t i = mid; i < all.size(); ++i) {
    PutLeaf(&right.page(), leaf_entry_bytes_, static_cast<int>(i - mid),
            all[i]);
  }
  SetCount(&right.page(), static_cast<uint16_t>(all.size() - mid));
  leaf.MarkDirty();
  right.MarkDirty();
  splits_.Inc();
  ++leaf_pages_;
  ++tuple_count_;

  CompositeKey separator{all[mid].tuple[key_column_], all[mid].fingerprint};
  uint32_t right_no = right.id().page_no;
  leaf.Release();
  right.Release();
  InsertIntoParent(&path, separator, right_no);
  return true;
}

void BTree::InsertIntoParent(std::vector<uint32_t>* path,
                             CompositeKey separator, uint32_t new_child) {
  if (path->empty()) {
    // The root split: grow the tree by one level.
    PageGuard new_root = buffers_->AllocatePinned(segment_);
    InitInternal(&new_root.page());
    SetChild0(&new_root.page(), root_page_);
    PutInner(&new_root.page(), 0,
             InnerEntry{separator.key, separator.fingerprint, new_child});
    SetCount(&new_root.page(), 1);
    new_root.MarkDirty();
    root_page_ = new_root.id().page_no;
    ++height_;
    ++inner_pages_;
    return;
  }

  uint32_t parent_no = path->back();
  path->pop_back();
  PageGuard parent = buffers_->Pin(PageId{segment_, parent_no});
  uint16_t count = Count(parent.page());

  // Position = first entry with key > separator.
  int pos = 0;
  while (pos < count) {
    InnerEntry e = GetInner(parent.page(), pos);
    CompositeKey ek{e.key, e.fingerprint};
    if (separator < ek) break;
    ++pos;
  }

  if (count < inner_capacity_) {
    for (int i = count - 1; i >= pos; --i) {
      PutInner(&parent.page(), i + 1, GetInner(parent.page(), i));
    }
    PutInner(&parent.page(), pos,
             InnerEntry{separator.key, separator.fingerprint, new_child});
    SetCount(&parent.page(), static_cast<uint16_t>(count + 1));
    parent.MarkDirty();
    return;
  }

  // Split the internal node. Collect all count+1 entries.
  std::vector<InnerEntry> all;
  all.reserve(count + 1);
  for (int i = 0; i < count; ++i) all.push_back(GetInner(parent.page(), i));
  all.insert(all.begin() + pos,
             InnerEntry{separator.key, separator.fingerprint, new_child});

  uint32_t mid = static_cast<uint32_t>(all.size()) / 2;
  InnerEntry up = all[mid];  // moves up; its child seeds the right node

  PageGuard right = buffers_->AllocatePinned(segment_);
  InitInternal(&right.page());
  SetChild0(&right.page(), up.child);
  for (uint32_t i = mid + 1; i < all.size(); ++i) {
    PutInner(&right.page(), static_cast<int>(i - mid - 1), all[i]);
  }
  SetCount(&right.page(), static_cast<uint16_t>(all.size() - mid - 1));

  for (uint32_t i = 0; i < mid; ++i) {
    PutInner(&parent.page(), static_cast<int>(i), all[i]);
  }
  SetCount(&parent.page(), static_cast<uint16_t>(mid));

  parent.MarkDirty();
  right.MarkDirty();
  splits_.Inc();
  ++inner_pages_;

  uint32_t right_no = right.id().page_no;
  parent.Release();
  right.Release();
  InsertIntoParent(path, CompositeKey{up.key, up.fingerprint}, right_no);
}

Status BTree::BulkLoad(std::vector<std::vector<AsrKey>> tuples,
                       double fill_factor) {
  if (tuple_count_ != 0 || height_ != 0 || leaf_pages_ != 1) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (!(fill_factor > 0.0) || fill_factor > 1.0) {
    return Status::InvalidArgument("fill factor must be in (0, 1]");
  }

  // Sort by composite key; ties (fingerprint collisions) break on the full
  // tuple so the dedup below is exact and the leaf order deterministic.
  struct BulkEntry {
    CompositeKey key;
    std::vector<uint64_t> tuple;
  };
  std::vector<BulkEntry> entries;
  entries.reserve(tuples.size());
  for (const std::vector<AsrKey>& tuple : tuples) {
    ASR_CHECK(tuple.size() == width_);
    BulkEntry e;
    e.key = KeyOf(tuple);
    e.tuple.resize(width_);
    for (uint32_t c = 0; c < width_; ++c) e.tuple[c] = tuple[c].raw();
    entries.push_back(std::move(e));
  }
  tuples.clear();
  tuples.shrink_to_fit();
  std::sort(entries.begin(), entries.end(),
            [](const BulkEntry& a, const BulkEntry& b) {
              if (!(a.key == b.key)) return a.key < b.key;
              return a.tuple < b.tuple;
            });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const BulkEntry& a, const BulkEntry& b) {
                              return a.key == b.key && a.tuple == b.tuple;
                            }),
                entries.end());
  if (entries.empty()) return Status::OK();

  uint32_t per_leaf = static_cast<uint32_t>(fill_factor * leaf_capacity_);
  per_leaf = std::max(1u, std::min(leaf_capacity_, per_leaf));

  // Level 0: pack the leaves left to right. The constructor's root page
  // becomes the leftmost leaf; each page is initialized, filled, and
  // released once (one write under metering).
  struct ChildRef {
    CompositeKey first;  // smallest composite key under this subtree
    uint32_t page_no;
  };
  std::vector<ChildRef> level;
  PageGuard prev;  // stays pinned until its next_leaf link is known
  size_t pos = 0;
  while (pos < entries.size()) {
    size_t take = std::min<size_t>(per_leaf, entries.size() - pos);
    // Never leave a lone entry for the last leaf when avoidable: steal one
    // from this leaf so every leaf holds at least two entries.
    if (entries.size() - pos - take == 1 && take > 1) --take;
    PageGuard leaf = level.empty() ? buffers_->Pin(PageId{segment_, root_page_})
                                   : buffers_->AllocatePinned(segment_);
    InitLeaf(&leaf.page());
    for (size_t i = 0; i < take; ++i) {
      const BulkEntry& e = entries[pos + i];
      uint32_t off = LeafOffset(leaf_entry_bytes_, static_cast<int>(i));
      leaf.page().Write<uint64_t>(off, e.key.fingerprint);
      leaf.page().WriteBytes(off + 8, e.tuple.data(), 8 * width_);
    }
    SetCount(&leaf.page(), static_cast<uint16_t>(take));
    leaf.MarkDirty();
    if (prev.valid()) {
      SetNextLeaf(&prev.page(), leaf.id().page_no);
      prev.Release();
    }
    bulkload_pages_.Inc();
    level.push_back(ChildRef{entries[pos].key, leaf.id().page_no});
    prev = std::move(leaf);
    pos += take;
  }
  prev.Release();
  leaf_pages_ = static_cast<uint32_t>(level.size());
  tuple_count_ = entries.size();
  entries.clear();
  entries.shrink_to_fit();

  // Internal levels, bottom-up: child0 plus up to inner_capacity_ separator
  // entries per node, each separator being the first key of the child to its
  // right (exactly what InsertIntoParent would have produced).
  const uint32_t fanout = inner_capacity_ + 1;
  while (level.size() > 1) {
    std::vector<ChildRef> parents;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = std::min<size_t>(fanout, level.size() - i);
      if (level.size() - i - take == 1 && take > 1) --take;
      PageGuard node = buffers_->AllocatePinned(segment_);
      InitInternal(&node.page());
      SetChild0(&node.page(), level[i].page_no);
      for (size_t c = 1; c < take; ++c) {
        const ChildRef& child = level[i + c];
        PutInner(&node.page(), static_cast<int>(c - 1),
                 InnerEntry{child.first.key, child.first.fingerprint,
                            child.page_no});
      }
      SetCount(&node.page(), static_cast<uint16_t>(take - 1));
      node.MarkDirty();
      bulkload_pages_.Inc();
      parents.push_back(ChildRef{level[i].first, node.id().page_no});
      ++inner_pages_;
      i += take;
    }
    level = std::move(parents);
    ++height_;
  }
  root_page_ = level.front().page_no;
  return Status::OK();
}

bool BTree::Erase(const std::vector<AsrKey>& tuple) {
  ASR_CHECK(tuple.size() == width_);
  CompositeKey key = KeyOf(tuple);
  uint32_t leaf_no = DescendToLeaf(key, nullptr);
  while (leaf_no != kNoLeaf) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
    leaf_touches_.Inc();
    uint16_t count = Count(leaf.page());
    for (int i = 0; i < count; ++i) {
      LeafEntry e = GetLeaf(leaf.page(), leaf_entry_bytes_, width_, i);
      CompositeKey ek{e.tuple[key_column_], e.fingerprint};
      if (key < ek) return false;  // passed the run
      if (ek < key) continue;
      bool same = true;
      for (uint32_t c = 0; c < width_; ++c) {
        if (e.tuple[c] != tuple[c].raw()) {
          same = false;
          break;
        }
      }
      if (same) {
        ShiftLeft(&leaf.page(), leaf_entry_bytes_, i, count);
        SetCount(&leaf.page(), static_cast<uint16_t>(count - 1));
        leaf.MarkDirty();
        --tuple_count_;
        return true;
      }
    }
    // The run may continue on the next leaf after splits.
    leaf_no = NextLeaf(leaf.page());
  }
  return false;
}

void BTree::Lookup(AsrKey key, std::vector<std::vector<AsrKey>>* out) {
  LookupEach(key, [out](const std::vector<AsrKey>& row) {
    out->push_back(row);
    return true;
  });
}

void BTree::LookupEach(
    AsrKey key, const std::function<bool(const std::vector<AsrKey>&)>& fn) {
  CompositeKey target{key.raw(), 0};
  uint32_t leaf_no = DescendToLeaf(target, nullptr);
  std::vector<AsrKey> row(width_);
  std::vector<uint64_t> raw(width_);
  while (leaf_no != kNoLeaf) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
    leaf_touches_.Inc();
    uint16_t count = Count(leaf.page());
    for (int i = 0; i < count; ++i) {
      uint32_t off = LeafOffset(leaf_entry_bytes_, i);
      leaf.page().ReadBytes(off + 8, raw.data(), 8 * width_);
      uint64_t k = raw[key_column_];
      if (k < key.raw()) continue;
      if (k > key.raw()) return;
      for (uint32_t c = 0; c < width_; ++c) row[c] = AsrKey::FromRaw(raw[c]);
      if (!fn(row)) return;
    }
    leaf_no = NextLeaf(leaf.page());
  }
}

bool BTree::Contains(AsrKey key) {
  CompositeKey target{key.raw(), 0};
  uint32_t leaf_no = DescendToLeaf(target, nullptr);
  while (leaf_no != kNoLeaf) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
    leaf_touches_.Inc();
    uint16_t count = Count(leaf.page());
    for (int i = 0; i < count; ++i) {
      LeafEntry e = GetLeaf(leaf.page(), leaf_entry_bytes_, width_, i);
      uint64_t k = e.tuple[key_column_];
      if (k < key.raw()) continue;
      return k == key.raw();
    }
    leaf_no = NextLeaf(leaf.page());
  }
  return false;
}

Status BTree::ScanAll(
    const std::function<Status(const std::vector<AsrKey>&)>& fn) {
  uint32_t leaf_no = DescendToLeaf(CompositeKey{0, 0}, nullptr);
  while (leaf_no != kNoLeaf) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
    leaf_touches_.Inc();
    uint16_t count = Count(leaf.page());
    for (int i = 0; i < count; ++i) {
      LeafEntry e = GetLeaf(leaf.page(), leaf_entry_bytes_, width_, i);
      std::vector<AsrKey> row;
      row.reserve(width_);
      for (uint32_t c = 0; c < width_; ++c) {
        row.push_back(AsrKey::FromRaw(e.tuple[c]));
      }
      ASR_RETURN_IF_ERROR(fn(row));
    }
    leaf_no = NextLeaf(leaf.page());
  }
  return Status::OK();
}

Result<uint32_t> BTree::SafeLeftmostLeaf() {
  const uint32_t seg_pages = buffers_->disk()->SegmentPageCount(segment_);
  uint32_t page_no = root_page_;
  for (uint32_t depth = 0; depth <= height_; ++depth) {
    if (page_no >= seg_pages) {
      return Status::Corruption("descent links past the segment");
    }
    Result<PageGuard> guard = buffers_->TryPin(PageId{segment_, page_no});
    ASR_RETURN_IF_ERROR(guard.status());
    const Page& page = guard->page();
    if (IsLeaf(page)) return page_no;
    if (Count(page) > inner_capacity_) {
      return Status::Corruption("inner entry count exceeds capacity");
    }
    page_no = Child0(page);
  }
  return Status::Corruption("descent exceeds the recorded height");
}

Status BTree::CheckIntegrity() {
  uint64_t seen = 0;
  bool have_prev = false;
  CompositeKey prev{0, 0};
  Result<uint32_t> leftmost = SafeLeftmostLeaf();
  ASR_RETURN_IF_ERROR(leftmost.status());
  uint32_t leaf_no = *leftmost;
  const uint32_t seg_pages = buffers_->disk()->SegmentPageCount(segment_);
  uint32_t leaves = 0;
  while (leaf_no != kNoLeaf) {
    // Bounding inside the loop keeps a corrupted next_leaf cycle from
    // hanging the checker.
    if (leaves >= leaf_pages_) {
      return Status::Corruption("leaf chain longer than allocated leaf pages");
    }
    if (leaf_no >= seg_pages) {
      return Status::Corruption("leaf chain links past the segment");
    }
    Result<PageGuard> leaf_guard = buffers_->TryPin(PageId{segment_, leaf_no});
    ASR_RETURN_IF_ERROR(leaf_guard.status());
    PageGuard leaf = std::move(*std::move(leaf_guard));
    if (!IsLeaf(leaf.page())) {
      return Status::Corruption("leaf chain reached a non-leaf page");
    }
    uint16_t count = Count(leaf.page());
    if (count > leaf_capacity_) {
      return Status::Corruption("leaf entry count exceeds capacity");
    }
    for (int i = 0; i < count; ++i) {
      LeafEntry e = GetLeaf(leaf.page(), leaf_entry_bytes_, width_, i);
      CompositeKey key{e.tuple[key_column_], e.fingerprint};
      if (have_prev && key < prev) {
        return Status::Corruption("leaf entries out of order");
      }
      std::vector<AsrKey> tuple;
      tuple.reserve(width_);
      for (uint64_t v : e.tuple) tuple.push_back(AsrKey::FromRaw(v));
      if (Fingerprint(tuple) != e.fingerprint) {
        return Status::Corruption("stored fingerprint mismatch");
      }
      prev = key;
      have_prev = true;
      ++seen;
    }
    ++leaves;
    leaf_no = NextLeaf(leaf.page());
  }
  if (seen != tuple_count_) {
    return Status::Corruption("tuple count mismatch: chain holds " +
                              std::to_string(seen) + ", expected " +
                              std::to_string(tuple_count_));
  }
  return Status::OK();
}

Status BTree::ForEachLeaf(
    const std::function<Status(uint32_t, uint16_t)>& fn) {
  Result<uint32_t> leftmost = SafeLeftmostLeaf();
  ASR_RETURN_IF_ERROR(leftmost.status());
  uint32_t leaf_no = *leftmost;
  const uint32_t seg_pages = buffers_->disk()->SegmentPageCount(segment_);
  uint32_t visited = 0;
  while (leaf_no != kNoLeaf) {
    if (visited++ >= leaf_pages_) {
      return Status::Corruption("leaf chain longer than allocated leaf pages");
    }
    if (leaf_no >= seg_pages) {
      return Status::Corruption("leaf chain links past the segment");
    }
    Result<PageGuard> leaf_guard = buffers_->TryPin(PageId{segment_, leaf_no});
    ASR_RETURN_IF_ERROR(leaf_guard.status());
    PageGuard leaf = std::move(*std::move(leaf_guard));
    if (!IsLeaf(leaf.page())) {
      return Status::Corruption("leaf chain reached a non-leaf page");
    }
    ASR_RETURN_IF_ERROR(fn(leaf_no, Count(leaf.page())));
    leaf_no = NextLeaf(leaf.page());
  }
  return Status::OK();
}

void BTree::ExportMetrics(obs::MetricsRegistry* registry,
                          const std::string& prefix) const {
  registry->Set(prefix + ".descents", descents_);
  registry->Set(prefix + ".leaf_touches", leaf_touches_);
  registry->Set(prefix + ".inner_touches", inner_touches_);
  registry->Set(prefix + ".splits", splits_);
  registry->Set(prefix + ".bulkload_pages", bulkload_pages_);
  registry->Set(prefix + ".tuples", tuple_count_);
  registry->Set(prefix + ".leaf_pages", leaf_pages_);
  registry->Set(prefix + ".inner_pages", inner_pages_);
  registry->Set(prefix + ".height", height_);
}

}  // namespace asr::btree
