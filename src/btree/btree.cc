#include "btree/btree.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace asr::btree {

namespace {

using storage::kPageSize;
using storage::Page;
using storage::PageGuard;
using storage::PageId;

constexpr uint32_t kHeaderBytes = 8;
constexpr uint32_t kInnerEntryBytes = 20;  // key u64 + fingerprint u64 + child u32
constexpr uint32_t kNoLeaf = UINT32_MAX;

// Leaf flags byte (header offset 1; zero on pre-compression pages, so old
// snapshots parse as plain).
constexpr uint8_t kLeafFlagCompressed = 0x01;
// Compressed-leaf header: the 8 shared bytes + key_base u64 + kb u8 + pad.
constexpr uint32_t kCompressedHeaderBytes = 24;

// Header accessors shared by both node kinds.
bool IsLeaf(const Page& p) { return p.Read<uint8_t>(0) != 0; }
uint16_t Count(const Page& p) { return p.Read<uint16_t>(2); }
void SetCount(Page* p, uint16_t c) { p->Write<uint16_t>(2, c); }
uint32_t NextLeaf(const Page& p) { return p.Read<uint32_t>(4); }
void SetNextLeaf(Page* p, uint32_t n) { p->Write<uint32_t>(4, n); }
uint32_t Child0(const Page& p) { return p.Read<uint32_t>(4); }
void SetChild0(Page* p, uint32_t c) { p->Write<uint32_t>(4, c); }

// Internal node entry accessors.
struct InnerEntry {
  uint64_t key;
  uint64_t fingerprint;
  uint32_t child;
};

uint32_t InnerOffset(int i) {
  return kHeaderBytes + static_cast<uint32_t>(i) * kInnerEntryBytes;
}

InnerEntry GetInner(const Page& p, int i) {
  InnerEntry e;
  e.key = p.Read<uint64_t>(InnerOffset(i));
  e.fingerprint = p.Read<uint64_t>(InnerOffset(i) + 8);
  e.child = p.Read<uint32_t>(InnerOffset(i) + 16);
  return e;
}

void PutInner(Page* p, int i, const InnerEntry& e) {
  p->Write<uint64_t>(InnerOffset(i), e.key);
  p->Write<uint64_t>(InnerOffset(i) + 8, e.fingerprint);
  p->Write<uint32_t>(InnerOffset(i) + 16, e.child);
}

// (key, fingerprint) packed into one 128-bit value so a composite compare is
// a single wide compare — the cmov the branchless searches below lean on —
// instead of a compare-and-branch cascade.
using u128 = unsigned __int128;

u128 Pack(uint64_t key, uint64_t fingerprint) {
  return (static_cast<u128>(key) << 64) | fingerprint;
}

// First index in [0, count) whose packed key is >= / > target; count if
// none. The loop halves a length rather than moving two bounds, so the
// compare result feeds two conditional moves and no branch the predictor
// can lose on random probe keys.
template <typename PackedAt>
uint32_t LowerBound(uint32_t count, u128 target, PackedAt at) {
  uint32_t lo = 0;
  uint32_t n = count;
  while (n > 0) {
    uint32_t half = n >> 1;
    uint32_t mid = lo + half;
    bool lt = at(mid) < target;
    lo = lt ? mid + 1 : lo;
    n = lt ? n - half - 1 : half;
  }
  return lo;
}

template <typename PackedAt>
uint32_t UpperBound(uint32_t count, u128 target, PackedAt at) {
  uint32_t lo = 0;
  uint32_t n = count;
  while (n > 0) {
    uint32_t half = n >> 1;
    uint32_t mid = lo + half;
    bool le = at(mid) <= target;
    lo = le ? mid + 1 : lo;
    n = le ? n - half - 1 : half;
  }
  return lo;
}

// Decoded leaf header; the accessors below take it plus the page. `stride`
// and `payload_off` position the per-entry payload for either format.
struct LeafView {
  uint16_t count = 0;
  uint32_t next = kNoLeaf;
  bool compressed = false;
  uint64_t base = 0;      // compressed: key_base
  uint32_t kb = 0;        // compressed: delta width in bytes (1, 2 or 4)
  uint32_t payload_off = kHeaderBytes;
  uint32_t stride = 0;    // payload bytes per entry
};

// Reader/writer for both leaf formats, parameterized on the tree's shape.
// Byte-level delta packing assumes a little-endian host (everything else in
// the page format does too, via Page::Read/Write).
struct LeafCodec {
  uint32_t width;
  uint32_t key_column;
  uint32_t plain_stride;   // 8 (fingerprint) + 8 * width
  uint32_t capacity;       // leaf_capacity_ — same for both formats

  LeafView Parse(const Page& p) const {
    LeafView v;
    v.count = Count(p);
    v.next = NextLeaf(p);
    v.compressed = (p.Read<uint8_t>(1) & kLeafFlagCompressed) != 0;
    if (v.compressed) {
      v.base = p.Read<uint64_t>(8);
      v.kb = p.Read<uint8_t>(16);
      v.payload_off = kCompressedHeaderBytes + capacity * v.kb;
      v.stride = 8 * width;  // fingerprint + the width-1 non-key columns
    } else {
      v.payload_off = kHeaderBytes;
      v.stride = plain_stride;
    }
    return v;
  }

  uint64_t KeyAt(const Page& p, const LeafView& v, uint32_t i) const {
    if (!v.compressed) {
      return p.Read<uint64_t>(v.payload_off + i * v.stride + 8 +
                              8 * key_column);
    }
    uint32_t delta = 0;
    p.ReadBytes(kCompressedHeaderBytes + i * v.kb, &delta, v.kb);
    return v.base + delta;
  }

  uint64_t FingerprintAt(const Page& p, const LeafView& v, uint32_t i) const {
    return p.Read<uint64_t>(v.payload_off + i * v.stride);
  }

  u128 PackedAt(const Page& p, const LeafView& v, uint32_t i) const {
    return Pack(KeyAt(p, v, i), FingerprintAt(p, v, i));
  }

  // Reconstructs entry i's full tuple (width raw values) into `raw`.
  void RowAt(const Page& p, const LeafView& v, uint32_t i,
             uint64_t* raw) const {
    if (!v.compressed) {
      p.ReadBytes(v.payload_off + i * v.stride + 8, raw, 8 * width);
      return;
    }
    uint32_t src = v.payload_off + i * v.stride + 8;
    for (uint32_t c = 0; c < width; ++c) {
      if (c == key_column) continue;
      raw[c] = p.Read<uint64_t>(src);
      src += 8;
    }
    raw[key_column] = KeyAt(p, v, i);
  }

  // Rewrites the page from `count` sorted entries (`fps[i]`, `raws[i*width
  // ..]`), picking the compressed format whenever every key fits in a 1/2/4
  // byte delta against the first (smallest) key. The page is zeroed first so
  // its image — and hence its checksum — is a pure function of the entries.
  void Encode(Page* p, const uint64_t* fps, const uint64_t* raws,
              uint32_t count, uint32_t next) const {
    ASR_DCHECK(count <= capacity);
    p->Zero();
    p->Write<uint8_t>(0, 1);
    SetCount(p, static_cast<uint16_t>(count));
    SetNextLeaf(p, next);
    uint32_t kb = 0;
    if (count > 0) {
      // Entries are sorted by (key, fingerprint), so first/last bound the
      // key span.
      uint64_t span = raws[static_cast<size_t>(count - 1) * width +
                           key_column] -
                      raws[key_column];
      kb = span <= 0xFF ? 1 : span <= 0xFFFF ? 2 : span <= 0xFFFFFFFFull ? 4
                                                                         : 0;
    }
    if (kb == 0) {  // empty leaf or a key span too wide: plain format
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t off = kHeaderBytes + i * plain_stride;
        p->Write<uint64_t>(off, fps[i]);
        p->WriteBytes(off + 8, raws + static_cast<size_t>(i) * width,
                      8 * width);
      }
      return;
    }
    p->Write<uint8_t>(1, kLeafFlagCompressed);
    const uint64_t base = raws[key_column];
    p->Write<uint64_t>(8, base);
    p->Write<uint8_t>(16, static_cast<uint8_t>(kb));
    const uint32_t payload = kCompressedHeaderBytes + capacity * kb;
    for (uint32_t i = 0; i < count; ++i) {
      const uint64_t* row = raws + static_cast<size_t>(i) * width;
      uint32_t delta = static_cast<uint32_t>(row[key_column] - base);
      p->WriteBytes(kCompressedHeaderBytes + i * kb, &delta, kb);
      uint32_t off = payload + i * 8 * width;
      p->Write<uint64_t>(off, fps[i]);
      uint32_t dst = off + 8;
      for (uint32_t c = 0; c < width; ++c) {
        if (c == key_column) continue;
        p->Write<uint64_t>(dst, row[c]);
        dst += 8;
      }
    }
  }
  // Splices entry (fp, row) in at position `lo` with two memmoves, keeping
  // the page's current format. Returns false when the format cannot absorb
  // the entry — leaf full, or a compressed leaf whose base/delta width the
  // new key does not fit — and the caller must re-encode (or split).
  bool InsertInPlace(Page* p, const LeafView& v, uint32_t lo, uint64_t fp,
                     const uint64_t* row) const {
    if (v.count >= capacity) return false;
    std::byte* d = p->data();
    if (v.compressed) {
      const uint64_t key = row[key_column];
      if (key < v.base) return false;
      const uint64_t delta = key - v.base;
      const uint64_t max_delta =
          v.kb == 1 ? 0xFF : v.kb == 2 ? 0xFFFF : 0xFFFFFFFFull;
      if (delta > max_delta) return false;
      std::memmove(d + kCompressedHeaderBytes + (lo + 1) * v.kb,
                   d + kCompressedHeaderBytes + lo * v.kb,
                   static_cast<size_t>(v.count - lo) * v.kb);
      const uint32_t delta32 = static_cast<uint32_t>(delta);
      p->WriteBytes(kCompressedHeaderBytes + lo * v.kb, &delta32, v.kb);
    }
    std::memmove(d + v.payload_off + (lo + 1) * v.stride,
                 d + v.payload_off + lo * v.stride,
                 static_cast<size_t>(v.count - lo) * v.stride);
    const uint32_t off = v.payload_off + lo * v.stride;
    p->Write<uint64_t>(off, fp);
    if (!v.compressed) {
      p->WriteBytes(off + 8, row, 8 * width);
    } else {
      uint32_t dst = off + 8;
      for (uint32_t c = 0; c < width; ++c) {
        if (c == key_column) continue;
        p->Write<uint64_t>(dst, row[c]);
        dst += 8;
      }
    }
    SetCount(p, static_cast<uint16_t>(v.count + 1));
    return true;
  }

  // Removes entry `i` with two memmoves, zeroing the vacated tail slots.
  // Works for both formats (a compressed leaf keeps its base; lazy deletion
  // never requires a format change).
  void EraseInPlace(Page* p, const LeafView& v, uint32_t i) const {
    std::byte* d = p->data();
    const size_t tail = v.count - i - 1;
    if (v.compressed) {
      std::memmove(d + kCompressedHeaderBytes + i * v.kb,
                   d + kCompressedHeaderBytes + (i + 1) * v.kb, tail * v.kb);
      std::memset(d + kCompressedHeaderBytes + (v.count - 1) * v.kb, 0, v.kb);
    }
    std::memmove(d + v.payload_off + i * v.stride,
                 d + v.payload_off + (i + 1) * v.stride, tail * v.stride);
    std::memset(d + v.payload_off + (v.count - 1) * v.stride, 0, v.stride);
    SetCount(p, static_cast<uint16_t>(v.count - 1));
  }
};

// Whole-leaf in-memory image for the re-encode path (format changes and
// splits): decode flat, splice, then re-encode. Flat arrays instead of
// per-entry vectors keep it at two block copies rather than O(count)
// allocations.
struct LeafImage {
  std::vector<uint64_t> fps;   // count entries
  std::vector<uint64_t> raws;  // count * width raw values, row-major
};

void DecodeAll(const LeafCodec& codec, const Page& p, const LeafView& v,
               LeafImage* img) {
  img->fps.resize(v.count);
  img->raws.resize(static_cast<size_t>(v.count) * codec.width);
  for (uint32_t i = 0; i < v.count; ++i) {
    img->fps[i] = codec.FingerprintAt(p, v, i);
    codec.RowAt(p, v, i, img->raws.data() + static_cast<size_t>(i) * codec.width);
  }
}

}  // namespace

BTree::BTree(storage::BufferManager* buffers, std::string name,
             uint32_t width, uint32_t key_column)
    : buffers_(buffers), width_(width), key_column_(key_column) {
  ASR_CHECK(width_ >= 1 && key_column_ < width_);
  leaf_entry_bytes_ = 8 + 8 * width_;
  leaf_capacity_ = (kPageSize - kHeaderBytes) / leaf_entry_bytes_;
  inner_capacity_ = (kPageSize - kHeaderBytes) / kInnerEntryBytes;
  // >= 4 also guarantees the compressed layout fits: payload_off grows by
  // capacity * kb <= capacity * 4 bytes while dropping the 8-byte key column
  // from capacity entries, a net win whenever capacity >= 4.
  ASR_CHECK(leaf_capacity_ >= 4);
  segment_ = buffers_->disk()->CreateSegment("btree:" + name);
  PageGuard root = buffers_->AllocatePinned(segment_);
  InitLeaf(&root.page());
  root.MarkDirty();
  root_page_ = root.id().page_no;
}

BTree::BTree(storage::BufferManager* buffers, const Meta& meta)
    : buffers_(buffers),
      segment_(meta.segment),
      width_(meta.width),
      key_column_(meta.key_column),
      root_page_(meta.root_page),
      height_(meta.height),
      leaf_pages_(meta.leaf_pages),
      inner_pages_(meta.inner_pages),
      tuple_count_(meta.tuple_count) {
  ASR_CHECK(width_ >= 1 && key_column_ < width_);
  leaf_entry_bytes_ = 8 + 8 * width_;
  leaf_capacity_ = (kPageSize - kHeaderBytes) / leaf_entry_bytes_;
  inner_capacity_ = (kPageSize - kHeaderBytes) / kInnerEntryBytes;
  ASR_CHECK(leaf_capacity_ >= 4);
}

BTree::Meta BTree::meta() const {
  Meta m;
  m.segment = segment_;
  m.width = width_;
  m.key_column = key_column_;
  m.root_page = root_page_;
  m.height = height_;
  m.leaf_pages = leaf_pages_;
  m.inner_pages = inner_pages_;
  m.tuple_count = tuple_count_;
  return m;
}

void BTree::RestoreMeta(const Meta& meta) {
  ASR_CHECK(meta.segment == segment_ && meta.width == width_ &&
            meta.key_column == key_column_);
  root_page_ = meta.root_page;
  height_ = meta.height;
  leaf_pages_ = meta.leaf_pages;
  inner_pages_ = meta.inner_pages;
  tuple_count_ = meta.tuple_count;
}

void BTree::InitLeaf(Page* page) {
  page->Zero();
  page->Write<uint8_t>(0, 1);
  SetCount(page, 0);
  SetNextLeaf(page, kNoLeaf);
}

void BTree::InitInternal(Page* page) {
  page->Zero();
  page->Write<uint8_t>(0, 0);
  SetCount(page, 0);
  SetChild0(page, kNoLeaf);
}

uint64_t BTree::Fingerprint(const std::vector<AsrKey>& tuple) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (AsrKey k : tuple) {
    h ^= k.raw();
    h *= 0x100000001B3ull;
    h ^= h >> 29;
  }
  // Avoid the reserved all-zero fingerprint so (0,0) is a safe -infinity.
  return h == 0 ? 1 : h;
}

BTree::CompositeKey BTree::KeyOf(const std::vector<AsrKey>& tuple) const {
  ASR_DCHECK(tuple.size() == width_);
  return CompositeKey{tuple[key_column_].raw(), Fingerprint(tuple)};
}

uint32_t BTree::DescendToLeaf(CompositeKey key, std::vector<uint32_t>* path) {
  descents_.Inc();
  const u128 target = Pack(key.key, key.fingerprint);
  uint32_t page_no = root_page_;
  while (true) {
    PageGuard guard = buffers_->Pin(PageId{segment_, page_no});
    const Page& page = guard.page();
    if (IsLeaf(page)) return page_no;
    inner_touches_.Inc();
    if (path != nullptr) path->push_back(page_no);
    // Descend into the child left of the first entry with key > `key`
    // (child0 when there is none to the left).
    uint32_t ub = UpperBound(Count(page), target, [&](uint32_t i) {
      return Pack(page.Read<uint64_t>(InnerOffset(static_cast<int>(i))),
                  page.Read<uint64_t>(InnerOffset(static_cast<int>(i)) + 8));
    });
    page_no = (ub == 0) ? Child0(page)
                        : GetInner(page, static_cast<int>(ub) - 1).child;
  }
}

bool BTree::Insert(const std::vector<AsrKey>& tuple) {
  ASR_CHECK(tuple.size() == width_);
  CompositeKey key = KeyOf(tuple);
  std::vector<uint32_t> path;
  uint32_t leaf_no = DescendToLeaf(key, &path);
  PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
  leaf_touches_.Inc();
  const LeafCodec codec{width_, key_column_, leaf_entry_bytes_,
                        leaf_capacity_};
  const LeafView v = codec.Parse(leaf.page());
  const u128 packed = Pack(key.key, key.fingerprint);

  uint32_t lo = LowerBound(v.count, packed, [&](uint32_t i) {
    return codec.PackedAt(leaf.page(), v, i);
  });
  // Scan the run of equal composite keys (fingerprint collisions) for the
  // identical tuple; set semantics make re-insertion a no-op. A run never
  // crosses a leaf boundary for practical purposes: equal composite keys are
  // equal tuples except under 64-bit fingerprint collision.
  std::vector<uint64_t> raw(width_);
  for (uint32_t i = lo; i < v.count; ++i) {
    if (codec.PackedAt(leaf.page(), v, i) != packed) break;
    codec.RowAt(leaf.page(), v, i, raw.data());
    bool same = true;
    for (uint32_t c = 0; c < width_; ++c) {
      if (raw[c] != tuple[c].raw()) {
        same = false;
        break;
      }
    }
    if (same) return false;
  }

  for (uint32_t c = 0; c < width_; ++c) raw[c] = tuple[c].raw();
  if (codec.InsertInPlace(&leaf.page(), v, lo, key.fingerprint, raw.data())) {
    leaf.MarkDirty();
    ++tuple_count_;
    return true;
  }

  LeafImage img;
  DecodeAll(codec, leaf.page(), v, &img);
  img.fps.insert(img.fps.begin() + lo, key.fingerprint);
  img.raws.insert(img.raws.begin() + static_cast<size_t>(lo) * width_,
                  raw.begin(), raw.end());
  const uint32_t n = v.count + 1u;

  if (n <= leaf_capacity_) {
    // Room, but the current format cannot absorb the key: re-encode (the
    // codec re-picks the widest-fitting format, falling back to plain).
    codec.Encode(&leaf.page(), img.fps.data(), img.raws.data(), n, v.next);
    leaf.MarkDirty();
    ++tuple_count_;
    return true;
  }

  // Split: the upper half moves to a new right sibling.
  const uint32_t mid = n / 2;
  PageGuard right = buffers_->AllocatePinned(segment_);
  codec.Encode(&right.page(), img.fps.data() + mid,
               img.raws.data() + static_cast<size_t>(mid) * width_, n - mid,
               v.next);
  codec.Encode(&leaf.page(), img.fps.data(), img.raws.data(), mid,
               right.id().page_no);
  leaf.MarkDirty();
  right.MarkDirty();
  splits_.Inc();
  ++leaf_pages_;
  ++tuple_count_;

  CompositeKey separator{img.raws[static_cast<size_t>(mid) * width_ +
                                  key_column_],
                         img.fps[mid]};
  uint32_t right_no = right.id().page_no;
  leaf.Release();
  right.Release();
  InsertIntoParent(&path, separator, right_no);
  return true;
}

void BTree::InsertIntoParent(std::vector<uint32_t>* path,
                             CompositeKey separator, uint32_t new_child) {
  if (path->empty()) {
    // The root split: grow the tree by one level.
    PageGuard new_root = buffers_->AllocatePinned(segment_);
    InitInternal(&new_root.page());
    SetChild0(&new_root.page(), root_page_);
    PutInner(&new_root.page(), 0,
             InnerEntry{separator.key, separator.fingerprint, new_child});
    SetCount(&new_root.page(), 1);
    new_root.MarkDirty();
    root_page_ = new_root.id().page_no;
    ++height_;
    ++inner_pages_;
    return;
  }

  uint32_t parent_no = path->back();
  path->pop_back();
  PageGuard parent = buffers_->Pin(PageId{segment_, parent_no});
  uint16_t count = Count(parent.page());

  // Position = first entry with key > separator.
  int pos = 0;
  while (pos < count) {
    InnerEntry e = GetInner(parent.page(), pos);
    CompositeKey ek{e.key, e.fingerprint};
    if (separator < ek) break;
    ++pos;
  }

  if (count < inner_capacity_) {
    for (int i = count - 1; i >= pos; --i) {
      PutInner(&parent.page(), i + 1, GetInner(parent.page(), i));
    }
    PutInner(&parent.page(), pos,
             InnerEntry{separator.key, separator.fingerprint, new_child});
    SetCount(&parent.page(), static_cast<uint16_t>(count + 1));
    parent.MarkDirty();
    return;
  }

  // Split the internal node. Collect all count+1 entries.
  std::vector<InnerEntry> all;
  all.reserve(count + 1);
  for (int i = 0; i < count; ++i) all.push_back(GetInner(parent.page(), i));
  all.insert(all.begin() + pos,
             InnerEntry{separator.key, separator.fingerprint, new_child});

  uint32_t mid = static_cast<uint32_t>(all.size()) / 2;
  InnerEntry up = all[mid];  // moves up; its child seeds the right node

  PageGuard right = buffers_->AllocatePinned(segment_);
  InitInternal(&right.page());
  SetChild0(&right.page(), up.child);
  for (uint32_t i = mid + 1; i < all.size(); ++i) {
    PutInner(&right.page(), static_cast<int>(i - mid - 1), all[i]);
  }
  SetCount(&right.page(), static_cast<uint16_t>(all.size() - mid - 1));

  for (uint32_t i = 0; i < mid; ++i) {
    PutInner(&parent.page(), static_cast<int>(i), all[i]);
  }
  SetCount(&parent.page(), static_cast<uint16_t>(mid));

  parent.MarkDirty();
  right.MarkDirty();
  splits_.Inc();
  ++inner_pages_;

  uint32_t right_no = right.id().page_no;
  parent.Release();
  right.Release();
  InsertIntoParent(path, CompositeKey{up.key, up.fingerprint}, right_no);
}

Status BTree::BulkLoad(std::vector<std::vector<AsrKey>> tuples,
                       double fill_factor) {
  if (tuple_count_ != 0 || height_ != 0 || leaf_pages_ != 1) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (!(fill_factor > 0.0) || fill_factor > 1.0) {
    return Status::InvalidArgument("fill factor must be in (0, 1]");
  }

  // Sort by composite key; ties (fingerprint collisions) break on the full
  // tuple so the dedup below is exact and the leaf order deterministic.
  struct BulkEntry {
    CompositeKey key;
    std::vector<uint64_t> tuple;
  };
  std::vector<BulkEntry> entries;
  entries.reserve(tuples.size());
  for (const std::vector<AsrKey>& tuple : tuples) {
    ASR_CHECK(tuple.size() == width_);
    BulkEntry e;
    e.key = KeyOf(tuple);
    e.tuple.resize(width_);
    for (uint32_t c = 0; c < width_; ++c) e.tuple[c] = tuple[c].raw();
    entries.push_back(std::move(e));
  }
  tuples.clear();
  tuples.shrink_to_fit();
  std::sort(entries.begin(), entries.end(),
            [](const BulkEntry& a, const BulkEntry& b) {
              if (!(a.key == b.key)) return a.key < b.key;
              return a.tuple < b.tuple;
            });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const BulkEntry& a, const BulkEntry& b) {
                              return a.key == b.key && a.tuple == b.tuple;
                            }),
                entries.end());
  if (entries.empty()) return Status::OK();

  uint32_t per_leaf = static_cast<uint32_t>(fill_factor * leaf_capacity_);
  per_leaf = std::max(1u, std::min(leaf_capacity_, per_leaf));

  // Level 0: pack the leaves left to right. The constructor's root page
  // becomes the leftmost leaf; each page is encoded, linked, and released
  // once (one write under metering).
  const LeafCodec codec{width_, key_column_, leaf_entry_bytes_,
                        leaf_capacity_};
  struct ChildRef {
    CompositeKey first;  // smallest composite key under this subtree
    uint32_t page_no;
  };
  std::vector<ChildRef> level;
  PageGuard prev;  // stays pinned until its next_leaf link is known
  std::vector<uint64_t> fps;
  std::vector<uint64_t> raws;
  size_t pos = 0;
  while (pos < entries.size()) {
    size_t take = std::min<size_t>(per_leaf, entries.size() - pos);
    // Never leave a lone entry for the last leaf when avoidable: steal one
    // from this leaf so every leaf holds at least two entries.
    if (entries.size() - pos - take == 1 && take > 1) --take;
    PageGuard leaf = level.empty() ? buffers_->Pin(PageId{segment_, root_page_})
                                   : buffers_->AllocatePinned(segment_);
    fps.resize(take);
    raws.resize(take * width_);
    for (size_t i = 0; i < take; ++i) {
      const BulkEntry& e = entries[pos + i];
      fps[i] = e.key.fingerprint;
      std::memcpy(raws.data() + i * width_, e.tuple.data(), 8 * width_);
    }
    codec.Encode(&leaf.page(), fps.data(), raws.data(),
                 static_cast<uint32_t>(take), kNoLeaf);
    leaf.MarkDirty();
    if (prev.valid()) {
      SetNextLeaf(&prev.page(), leaf.id().page_no);
      prev.Release();
    }
    bulkload_pages_.Inc();
    level.push_back(ChildRef{entries[pos].key, leaf.id().page_no});
    prev = std::move(leaf);
    pos += take;
  }
  prev.Release();
  leaf_pages_ = static_cast<uint32_t>(level.size());
  tuple_count_ = entries.size();
  entries.clear();
  entries.shrink_to_fit();

  // Internal levels, bottom-up: child0 plus up to inner_capacity_ separator
  // entries per node, each separator being the first key of the child to its
  // right (exactly what InsertIntoParent would have produced).
  const uint32_t fanout = inner_capacity_ + 1;
  while (level.size() > 1) {
    std::vector<ChildRef> parents;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = std::min<size_t>(fanout, level.size() - i);
      if (level.size() - i - take == 1 && take > 1) --take;
      PageGuard node = buffers_->AllocatePinned(segment_);
      InitInternal(&node.page());
      SetChild0(&node.page(), level[i].page_no);
      for (size_t c = 1; c < take; ++c) {
        const ChildRef& child = level[i + c];
        PutInner(&node.page(), static_cast<int>(c - 1),
                 InnerEntry{child.first.key, child.first.fingerprint,
                            child.page_no});
      }
      SetCount(&node.page(), static_cast<uint16_t>(take - 1));
      node.MarkDirty();
      bulkload_pages_.Inc();
      parents.push_back(ChildRef{level[i].first, node.id().page_no});
      ++inner_pages_;
      i += take;
    }
    level = std::move(parents);
    ++height_;
  }
  root_page_ = level.front().page_no;
  return Status::OK();
}

bool BTree::Erase(const std::vector<AsrKey>& tuple) {
  ASR_CHECK(tuple.size() == width_);
  CompositeKey key = KeyOf(tuple);
  const LeafCodec codec{width_, key_column_, leaf_entry_bytes_,
                        leaf_capacity_};
  const u128 packed = Pack(key.key, key.fingerprint);
  std::vector<uint64_t> raw(width_);
  uint32_t leaf_no = DescendToLeaf(key, nullptr);
  while (leaf_no != kNoLeaf) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
    leaf_touches_.Inc();
    const LeafView v = codec.Parse(leaf.page());
    uint32_t lo = LowerBound(v.count, packed, [&](uint32_t i) {
      return codec.PackedAt(leaf.page(), v, i);
    });
    for (uint32_t i = lo; i < v.count; ++i) {
      if (codec.PackedAt(leaf.page(), v, i) != packed) return false;
      codec.RowAt(leaf.page(), v, i, raw.data());
      bool same = true;
      for (uint32_t c = 0; c < width_; ++c) {
        if (raw[c] != tuple[c].raw()) {
          same = false;
          break;
        }
      }
      if (!same) continue;  // fingerprint collision inside the run
      codec.EraseInPlace(&leaf.page(), v, i);
      leaf.MarkDirty();
      --tuple_count_;
      return true;
    }
    // The run may continue on the next leaf after splits.
    leaf_no = v.next;
  }
  return false;
}

void BTree::Lookup(AsrKey key, std::vector<std::vector<AsrKey>>* out) {
  LookupEach(key, [out](const std::vector<AsrKey>& row) {
    out->push_back(row);
    return true;
  });
}

void BTree::LookupEach(
    AsrKey key, const std::function<bool(const std::vector<AsrKey>&)>& fn) {
  CompositeKey target{key.raw(), 0};
  const u128 tpack = Pack(key.raw(), 0);
  const LeafCodec codec{width_, key_column_, leaf_entry_bytes_,
                        leaf_capacity_};
  uint32_t leaf_no = DescendToLeaf(target, nullptr);
  std::vector<AsrKey> row(width_);
  std::vector<uint64_t> raw(width_);
  while (leaf_no != kNoLeaf) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
    leaf_touches_.Inc();
    const LeafView v = codec.Parse(leaf.page());
    // No real fingerprint is 0, so the (key, 0) lower bound is the start of
    // the cluster.
    uint32_t i = LowerBound(v.count, tpack, [&](uint32_t j) {
      return codec.PackedAt(leaf.page(), v, j);
    });
    for (; i < v.count; ++i) {
      if (codec.KeyAt(leaf.page(), v, i) != key.raw()) return;
      codec.RowAt(leaf.page(), v, i, raw.data());
      for (uint32_t c = 0; c < width_; ++c) row[c] = AsrKey::FromRaw(raw[c]);
      if (!fn(row)) return;
    }
    leaf_no = v.next;
  }
}

void BTree::LookupBatch(
    const std::vector<AsrKey>& keys,
    const std::function<bool(size_t, const std::vector<AsrKey>&)>& fn) {
  if (keys.empty()) return;
  const LeafCodec codec{width_, key_column_, leaf_entry_bytes_,
                        leaf_capacity_};
  storage::Disk* disk = buffers_->disk();
  std::vector<AsrKey> row(width_);
  std::vector<uint64_t> raw(width_);
  PageGuard leaf;
  LeafView v;

  auto PinLeaf = [&](uint32_t no) {
    leaf = buffers_->Pin(PageId{segment_, no});
    leaf_touches_.Inc();
    v = codec.Parse(leaf.page());
    // Announce the sibling before scanning this leaf: by the time the run
    // (or the next key) hops the chain, its bytes are on their way in.
    if (v.next != kNoLeaf) disk->PrefetchPage(PageId{segment_, v.next});
  };

  for (size_t ki = 0; ki < keys.size(); ++ki) {
    ASR_DCHECK(ki == 0 || keys[ki - 1].raw() < keys[ki].raw());
    const uint64_t target = keys[ki].raw();
    const u128 tpack = Pack(target, 0);
    if (!leaf.valid()) {
      PinLeaf(DescendToLeaf(CompositeKey{target, 0}, nullptr));
    }

    // Position on a leaf that can contain `target`: one free chain hop from
    // wherever the previous key left us (sorted keys make the prefetched
    // sibling the common case), then one descent, then the chain again.
    // Leaves are chain-linked in global key order, so a rightmost leaf that
    // is still short proves no later key matches either.
    bool descended = false;
    bool hopped = false;
    for (;;) {
      if (v.count > 0 &&
          codec.KeyAt(leaf.page(), v, v.count - 1) >= target) {
        break;
      }
      if (v.next == kNoLeaf) return;
      if (hopped && !descended) {
        PinLeaf(DescendToLeaf(CompositeKey{target, 0}, nullptr));
        descended = true;
      } else {
        PinLeaf(v.next);
        hopped = true;
      }
    }

    // Serve the cluster — same rows, same order, same leaf pins as
    // LookupEach(keys[ki], ...) would produce from its own descent.
    uint32_t i = LowerBound(v.count, tpack, [&](uint32_t j) {
      return codec.PackedAt(leaf.page(), v, j);
    });
    for (;;) {
      if (i == v.count) {
        if (v.next == kNoLeaf) break;
        PinLeaf(v.next);
        i = 0;
        continue;
      }
      if (codec.KeyAt(leaf.page(), v, i) != target) break;
      codec.RowAt(leaf.page(), v, i, raw.data());
      for (uint32_t c = 0; c < width_; ++c) row[c] = AsrKey::FromRaw(raw[c]);
      if (!fn(ki, row)) return;
      ++i;
    }
  }
}

bool BTree::Contains(AsrKey key) {
  CompositeKey target{key.raw(), 0};
  const u128 tpack = Pack(key.raw(), 0);
  const LeafCodec codec{width_, key_column_, leaf_entry_bytes_,
                        leaf_capacity_};
  uint32_t leaf_no = DescendToLeaf(target, nullptr);
  while (leaf_no != kNoLeaf) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
    leaf_touches_.Inc();
    const LeafView v = codec.Parse(leaf.page());
    uint32_t i = LowerBound(v.count, tpack, [&](uint32_t j) {
      return codec.PackedAt(leaf.page(), v, j);
    });
    if (i < v.count) return codec.KeyAt(leaf.page(), v, i) == key.raw();
    leaf_no = v.next;
  }
  return false;
}

Status BTree::ScanAll(
    const std::function<Status(const std::vector<AsrKey>&)>& fn) {
  const LeafCodec codec{width_, key_column_, leaf_entry_bytes_,
                        leaf_capacity_};
  std::vector<uint64_t> raw(width_);
  uint32_t leaf_no = DescendToLeaf(CompositeKey{0, 0}, nullptr);
  while (leaf_no != kNoLeaf) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, leaf_no});
    leaf_touches_.Inc();
    const LeafView v = codec.Parse(leaf.page());
    for (uint32_t i = 0; i < v.count; ++i) {
      codec.RowAt(leaf.page(), v, i, raw.data());
      std::vector<AsrKey> row;
      row.reserve(width_);
      for (uint32_t c = 0; c < width_; ++c) {
        row.push_back(AsrKey::FromRaw(raw[c]));
      }
      ASR_RETURN_IF_ERROR(fn(row));
    }
    leaf_no = v.next;
  }
  return Status::OK();
}

Result<uint32_t> BTree::SafeLeftmostLeaf() {
  const uint32_t seg_pages = buffers_->disk()->SegmentPageCount(segment_);
  uint32_t page_no = root_page_;
  for (uint32_t depth = 0; depth <= height_; ++depth) {
    if (page_no >= seg_pages) {
      return Status::Corruption("descent links past the segment");
    }
    Result<PageGuard> guard = buffers_->TryPin(PageId{segment_, page_no});
    ASR_RETURN_IF_ERROR(guard.status());
    const Page& page = guard->page();
    if (IsLeaf(page)) return page_no;
    if (Count(page) > inner_capacity_) {
      return Status::Corruption("inner entry count exceeds capacity");
    }
    page_no = Child0(page);
  }
  return Status::Corruption("descent exceeds the recorded height");
}

Status BTree::CheckIntegrity() {
  uint64_t seen = 0;
  bool have_prev = false;
  CompositeKey prev{0, 0};
  Result<uint32_t> leftmost = SafeLeftmostLeaf();
  ASR_RETURN_IF_ERROR(leftmost.status());
  uint32_t leaf_no = *leftmost;
  const uint32_t seg_pages = buffers_->disk()->SegmentPageCount(segment_);
  const LeafCodec codec{width_, key_column_, leaf_entry_bytes_,
                        leaf_capacity_};
  std::vector<uint64_t> raw(width_);
  uint32_t leaves = 0;
  while (leaf_no != kNoLeaf) {
    // Bounding inside the loop keeps a corrupted next_leaf cycle from
    // hanging the checker.
    if (leaves >= leaf_pages_) {
      return Status::Corruption("leaf chain longer than allocated leaf pages");
    }
    if (leaf_no >= seg_pages) {
      return Status::Corruption("leaf chain links past the segment");
    }
    Result<PageGuard> leaf_guard = buffers_->TryPin(PageId{segment_, leaf_no});
    ASR_RETURN_IF_ERROR(leaf_guard.status());
    PageGuard leaf = std::move(*std::move(leaf_guard));
    if (!IsLeaf(leaf.page())) {
      return Status::Corruption("leaf chain reached a non-leaf page");
    }
    uint16_t count = Count(leaf.page());
    if (count > leaf_capacity_) {
      return Status::Corruption("leaf entry count exceeds capacity");
    }
    const LeafView v = codec.Parse(leaf.page());
    // Validate the format header before trusting any entry offset, so a
    // stomped kb cannot send reads past the page.
    if (v.compressed && v.kb != 1 && v.kb != 2 && v.kb != 4) {
      return Status::Corruption("compressed leaf has invalid delta width");
    }
    if (v.payload_off + static_cast<uint64_t>(count) * v.stride > kPageSize) {
      return Status::Corruption("leaf payload extends past the page");
    }
    for (uint32_t i = 0; i < count; ++i) {
      codec.RowAt(leaf.page(), v, i, raw.data());
      CompositeKey key{raw[key_column_], codec.FingerprintAt(leaf.page(), v, i)};
      if (have_prev && key < prev) {
        return Status::Corruption("leaf entries out of order");
      }
      std::vector<AsrKey> tuple;
      tuple.reserve(width_);
      for (uint64_t value : raw) tuple.push_back(AsrKey::FromRaw(value));
      if (Fingerprint(tuple) != key.fingerprint) {
        return Status::Corruption("stored fingerprint mismatch");
      }
      prev = key;
      have_prev = true;
      ++seen;
    }
    ++leaves;
    leaf_no = v.next;
  }
  if (seen != tuple_count_) {
    return Status::Corruption("tuple count mismatch: chain holds " +
                              std::to_string(seen) + ", expected " +
                              std::to_string(tuple_count_));
  }
  return Status::OK();
}

Status BTree::ForEachLeaf(
    const std::function<Status(uint32_t, uint16_t)>& fn) {
  Result<uint32_t> leftmost = SafeLeftmostLeaf();
  ASR_RETURN_IF_ERROR(leftmost.status());
  uint32_t leaf_no = *leftmost;
  const uint32_t seg_pages = buffers_->disk()->SegmentPageCount(segment_);
  uint32_t visited = 0;
  while (leaf_no != kNoLeaf) {
    if (visited++ >= leaf_pages_) {
      return Status::Corruption("leaf chain longer than allocated leaf pages");
    }
    if (leaf_no >= seg_pages) {
      return Status::Corruption("leaf chain links past the segment");
    }
    Result<PageGuard> leaf_guard = buffers_->TryPin(PageId{segment_, leaf_no});
    ASR_RETURN_IF_ERROR(leaf_guard.status());
    PageGuard leaf = std::move(*std::move(leaf_guard));
    if (!IsLeaf(leaf.page())) {
      return Status::Corruption("leaf chain reached a non-leaf page");
    }
    ASR_RETURN_IF_ERROR(fn(leaf_no, Count(leaf.page())));
    leaf_no = NextLeaf(leaf.page());
  }
  return Status::OK();
}

Result<BTree::LeafFormatCounts> BTree::CountLeafFormats() {
  LeafFormatCounts counts;
  ASR_RETURN_IF_ERROR(ForEachLeaf([&](uint32_t page_no, uint16_t) {
    PageGuard leaf = buffers_->Pin(PageId{segment_, page_no});
    if ((leaf.page().Read<uint8_t>(1) & kLeafFlagCompressed) != 0) {
      ++counts.compressed;
    } else {
      ++counts.plain;
    }
    return Status::OK();
  }));
  return counts;
}

void BTree::ExportMetrics(obs::MetricsRegistry* registry,
                          const std::string& prefix) const {
  registry->Set(prefix + ".descents", descents_);
  registry->Set(prefix + ".leaf_touches", leaf_touches_);
  registry->Set(prefix + ".inner_touches", inner_touches_);
  registry->Set(prefix + ".splits", splits_);
  registry->Set(prefix + ".bulkload_pages", bulkload_pages_);
  registry->Set(prefix + ".tuples", tuple_count_);
  registry->Set(prefix + ".leaf_pages", leaf_pages_);
  registry->Set(prefix + ".inner_pages", inner_pages_);
  registry->Set(prefix + ".height", height_);
}

}  // namespace asr::btree
