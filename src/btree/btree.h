// Page-based B+ tree storing fixed-width ASR tuples, clustered on one column.
//
// Following Valduriez's join-index storage scheme adopted by the paper
// (§5.2), every ASR partition is stored in two redundant B+ trees: one keyed
// (clustered) on the partition's first column and one on its last. A "cluster"
// is the group of tuples sharing the key value; cluster lookup costs the tree
// height plus the cluster's leaf pages, which is exactly the ht + nlp term of
// the analytical model (Eqs. 19-28, 33, 34).
//
// Keys are (column value, fingerprint) pairs: the 64-bit fingerprint of the
// whole tuple disambiguates tuples inside a cluster, giving set semantics
// (duplicate inserts are no-ops) and exact-match deletion. Deletion is lazy —
// leaves may underflow; they are unlinked only when the tree is rebuilt —
// which matches the maintenance model's assumption that "page overflows of
// leaf or non-leaf pages do not occur" for cost accounting (§6.2).
//
// Node layout (within the 4056-byte net page):
//   plain leaf:  [1:u8][flags:u8=0][count:u16][next_leaf:u32]
//                [(fingerprint:u64, tuple: width x u64) x count]
//   internal:    [0:u8][pad:u8][count:u16][child0:u32]
//                [(key:u64, fingerprint:u64, child:u32) x count]
//
// Leaves additionally support a key-prefix-compressed format (flags bit 0),
// chosen per leaf whenever every key-column value in the leaf fits in a
// 1/2/4-byte delta against the leaf's smallest key — which clustered OID
// runs almost always do:
//   compressed:  [1:u8][flags:u8=1][count:u16][next_leaf:u32]
//                [key_base:u64][kb:u8][pad x7]
//                [key deltas: count x kb bytes]                (columnar)
//                at 24 + leaf_capacity x kb:
//                [(fingerprint:u64, non-key columns x u64) x count]
// The key column is reconstructed as key_base + delta; the packed columnar
// delta array is what intra-leaf binary search touches, so a probe scans
// 1-4 bytes per entry instead of a full tuple. Compression is a CPU /
// memory-bandwidth optimization only: a leaf never holds more than the
// plain-format capacity (the paper's Eq. 16 density), so page counts —
// the model-validated quantity — are identical with and without it.
#ifndef ASR_BTREE_BTREE_H_
#define ASR_BTREE_BTREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/asr_key.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/buffer_manager.h"

namespace asr::btree {

class BTree {
 public:
  // `width` is the tuple arity; `key_column` the clustered column index.
  BTree(storage::BufferManager* buffers, std::string name, uint32_t width,
        uint32_t key_column);

  // The in-memory half of a tree's state: everything not recoverable from
  // its pages alone. Captured by meta(), carried across process and
  // transaction boundaries, and re-attached with the constructor below —
  // the handle that lets a snapshot reader (or a rolled-back writer) open
  // the same segment through a different buffer pool.
  struct Meta {
    uint32_t segment = 0;
    uint32_t width = 0;
    uint32_t key_column = 0;
    uint32_t root_page = 0;
    uint32_t height = 0;
    uint32_t leaf_pages = 0;
    uint32_t inner_pages = 0;
    uint64_t tuple_count = 0;
  };
  Meta meta() const;

  // Attaches to an existing segment described by `meta` without touching
  // any page (capacities are recomputed from width). The caller is
  // responsible for `meta` matching the segment's actual contents.
  BTree(storage::BufferManager* buffers, const Meta& meta);

  // Rolls the in-memory state back to an earlier meta() of this same tree —
  // the abort half of a transactional maintenance op, paired with the
  // discard of its staged page versions. The segment must match.
  void RestoreMeta(const Meta& meta);

  ASR_DISALLOW_COPY_AND_ASSIGN(BTree);

  uint32_t width() const { return width_; }
  uint32_t key_column() const { return key_column_; }

  // Inserts `tuple` (size == width). Returns true when newly inserted,
  // false when the identical tuple was already present.
  bool Insert(const std::vector<AsrKey>& tuple);

  // Leaf fill fraction used by BulkLoad when none is given: pack leaves
  // completely, the density the paper's page-count estimates (Eq. 16)
  // assume.
  static constexpr double kDefaultFillFactor = 1.0;

  // Sorted bottom-up construction: sorts `tuples` by (key column,
  // fingerprint), packs leaves left-to-right at `fill_factor` of their
  // capacity, then builds the internal levels bottom-up — no root-to-leaf
  // descents and no splits, so every page is written exactly once.
  // Duplicate tuples collapse (set semantics, as with Insert). Only valid on
  // an empty tree; the resulting tree is scan-identical to one grown by
  // inserting the same tuples one at a time.
  Status BulkLoad(std::vector<std::vector<AsrKey>> tuples,
                  double fill_factor = kDefaultFillFactor);

  // Removes the exact tuple; returns true when it was present.
  bool Erase(const std::vector<AsrKey>& tuple);

  // Appends all tuples whose key column equals `key` to `out`.
  void Lookup(AsrKey key, std::vector<std::vector<AsrKey>>* out);

  // Streaming cluster probe: calls `fn` for every tuple whose key column
  // equals `key`, in cluster order, decoding into a reused buffer instead of
  // materializing the cluster. `fn` returns false to stop early. Page cost
  // is identical to Lookup (ht + nlp).
  void LookupEach(AsrKey key,
                  const std::function<bool(const std::vector<AsrKey>&)>& fn);

  // Batched sorted-probe lookup: `keys` must be sorted ascending. Calls
  // `fn(i, tuple)` for every tuple whose key column equals keys[i], i
  // ascending and tuples in cluster order — exactly the rows LookupEach
  // would deliver key by key, byte for byte. `fn` returns false to stop the
  // whole batch. The win is CPU: one descent serves every key that lands in
  // the current leaf (or its sibling — the chain hop the sorted order makes
  // likely), and the sibling leaf is software-prefetched while the current
  // one is scanned. Amortizing descents also skips inner-page pins the
  // scalar path would re-charge, so strict metering runs (buffer capacity
  // 0), whose observed counts must realize the model's per-source ht + nlp
  // charge, should keep calling LookupEach — see
  // AccessSupportRelation::EvalForward.
  void LookupBatch(const std::vector<AsrKey>& keys,
                   const std::function<bool(size_t, const std::vector<AsrKey>&)>& fn);

  // Buffer pool this tree pins through (callers use its capacity to decide
  // between metered-faithful scalar probes and batched raw-speed probes).
  storage::BufferManager* buffers() const { return buffers_; }

  // True iff some tuple has `key` in the key column (same page cost as a
  // cluster lookup of one leaf page).
  bool Contains(AsrKey key);

  // Visits every tuple in key order (inspects every leaf page; the
  // "exhaustive search of the access relation" case of §5.9.3).
  Status ScanAll(const std::function<Status(const std::vector<AsrKey>&)>& fn);

  // Structural validation: leaf entries sorted, leaf chain ordered, counts
  // within capacity, and the tuple count consistent. Returns Corruption on
  // the first violation. Intended for tests and post-load checks.
  Status CheckIntegrity();

  // Leaf-chain walk for structural checkers: calls `fn(page_no, entry_count)`
  // for every leaf in chain order. Fails with Corruption when the chain does
  // not terminate within the allocated leaf count (a cycle or stray link).
  Status ForEachLeaf(const std::function<Status(uint32_t, uint16_t)>& fn);

  // Test/diagnostic introspection: walks the leaf chain and returns
  // (compressed, plain) leaf counts. Cold path.
  struct LeafFormatCounts {
    uint32_t compressed = 0;
    uint32_t plain = 0;
  };
  Result<LeafFormatCounts> CountLeafFormats();

  // Disk segment holding this tree's pages (introspection; also the handle
  // corruption-injection tests use to reach raw pages).
  uint32_t segment() const { return segment_; }

  // --- Statistics (realized counterparts of Eqs. 16, 19, 20) -----------
  uint64_t tuple_count() const { return tuple_count_; }
  uint32_t leaf_page_count() const { return leaf_pages_; }
  uint32_t inner_page_count() const { return inner_pages_; }
  // Levels above the leaves (the paper's ht, Eq. 19).
  uint32_t height() const { return height_; }

  uint32_t leaf_capacity() const { return leaf_capacity_; }
  uint32_t inner_capacity() const { return inner_capacity_; }

  // --- Observability (compiled out under ASR_METRICS=OFF) ----------------
  // Root-to-leaf descents (one per Insert/Erase/Lookup*/Contains).
  uint64_t descents() const { return descents_.value(); }
  // Leaf / inner pages pinned, over all operations (the realized ht and
  // nlp work the model charges per cluster access).
  uint64_t leaf_touches() const { return leaf_touches_.value(); }
  uint64_t inner_touches() const { return inner_touches_.value(); }
  // Leaf plus inner splits (zero on a bulk-loaded tree).
  uint64_t splits() const { return splits_.value(); }
  // Pages packed by BulkLoad (each written exactly once).
  uint64_t bulkload_pages() const { return bulkload_pages_.value(); }

  // Pushes the tree's counters and structural statistics into `registry`
  // under `prefix`. Cold path.
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  struct CompositeKey {
    uint64_t key;          // AsrKey raw value
    uint64_t fingerprint;  // hash of the whole tuple

    friend bool operator<(const CompositeKey& a, const CompositeKey& b) {
      if (a.key != b.key) return a.key < b.key;
      return a.fingerprint < b.fingerprint;
    }
    friend bool operator==(const CompositeKey& a, const CompositeKey& b) {
      return a.key == b.key && a.fingerprint == b.fingerprint;
    }
  };

  static uint64_t Fingerprint(const std::vector<AsrKey>& tuple);
  CompositeKey KeyOf(const std::vector<AsrKey>& tuple) const;

  // Descends to the leaf that should contain `key`, recording the path of
  // internal page numbers (for splits).
  uint32_t DescendToLeaf(CompositeKey key, std::vector<uint32_t>* path);

  // Descent to the leftmost leaf that trusts nothing: page numbers are
  // bounds-checked against the segment, inner counts against capacity, and
  // the walk is capped at the recorded height, so CheckIntegrity/ForEachLeaf
  // terminate with Corruption on pages a crash left stale or torn instead
  // of aborting or cycling. Reads go through TryPin, so checksum failures
  // surface as a Status too.
  Result<uint32_t> SafeLeftmostLeaf();

  // Inserts a (separator, child) into the parent chain after a split.
  void InsertIntoParent(std::vector<uint32_t>* path, CompositeKey separator,
                        uint32_t new_child);

  void InitLeaf(storage::Page* page);
  void InitInternal(storage::Page* page);

  storage::BufferManager* buffers_;
  uint32_t segment_;
  uint32_t width_;
  uint32_t key_column_;
  uint32_t leaf_entry_bytes_;
  uint32_t leaf_capacity_;
  uint32_t inner_capacity_;
  uint32_t root_page_;
  uint32_t height_ = 0;
  uint32_t leaf_pages_ = 1;
  uint32_t inner_pages_ = 0;
  uint64_t tuple_count_ = 0;

  obs::HotCounter descents_;
  obs::HotCounter leaf_touches_;
  obs::HotCounter inner_touches_;
  obs::HotCounter splits_;
  obs::HotCounter bulkload_pages_;
};

}  // namespace asr::btree

#endif  // ASR_BTREE_BTREE_H_
