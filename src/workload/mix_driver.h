// Executes an operation mix (§6.4.1) against a live object base with strict
// page metering — the empirical counterpart of the cost model's MixCost.
//
// Queries run through the ASR when it supports them and navigationally
// otherwise (Eq. 35's dispatch); updates are real ins_i edge insertions /
// removals applied to the store and propagated through the ASR's incremental
// maintenance (§6).
#ifndef ASR_WORKLOAD_MIX_DRIVER_H_
#define ASR_WORKLOAD_MIX_DRIVER_H_

#include <cstdint>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "common/random.h"
#include "cost/opmix.h"
#include "workload/synthetic_base.h"

namespace asr::workload {

struct MixRunResult {
  uint64_t operations = 0;
  uint64_t queries = 0;
  uint64_t updates = 0;
  uint64_t total_page_accesses = 0;

  double PerOperation() const {
    return operations == 0
               ? 0.0
               : static_cast<double>(total_page_accesses) / operations;
  }
};

class MixDriver {
 public:
  // `asr` may be null (no access support: queries run navigationally and
  // updates only touch the object base).
  MixDriver(SyntheticBase* base, AccessSupportRelation* asr, uint64_t seed)
      : base_(base), asr_(asr), rng_(seed) {}

  // Draws and executes `operations` operations from the mix: with
  // probability `p_up` an update from Umix, otherwise a query from Qmix,
  // each picked by its weight. Returns metered page-access totals.
  Result<MixRunResult> Run(const cost::OperationMix& mix, double p_up,
                           uint64_t operations);

 private:
  Status RunQuery(const cost::WeightedQuery& query, MixRunResult* result);
  Status RunUpdate(const cost::WeightedUpdate& update, MixRunResult* result);

  // Weighted choice among entries whose weights sum to ~1.
  template <typename T>
  const T& Pick(const std::vector<T>& entries);

  SyntheticBase* base_;
  AccessSupportRelation* asr_;
  Rng rng_;
};

}  // namespace asr::workload

#endif  // ASR_WORKLOAD_MIX_DRIVER_H_
