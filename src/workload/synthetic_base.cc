#include "workload/synthetic_base.h"

#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"

namespace asr::workload {

Result<std::unique_ptr<SyntheticBase>> SyntheticBase::Generate(
    const cost::ApplicationProfile& profile, const GenerateOptions& options) {
  ASR_RETURN_IF_ERROR(profile.Validate());
  const uint32_t n = profile.n;

  std::unique_ptr<SyntheticBase> base(
      new SyntheticBase(options.buffer_capacity, options.disk));
  gom::Schema& schema = base->schema_;

  // Define types from the path's far end backwards so range types exist.
  std::vector<TypeId> types(n + 1, kInvalidTypeId);
  std::vector<TypeId> set_types(n + 1, kInvalidTypeId);
  {
    Result<TypeId> tn = schema.DefineTupleType("T" + std::to_string(n), {}, {});
    ASR_RETURN_IF_ERROR(tn.status());
    types[n] = *tn;
  }
  for (uint32_t i = n; i-- > 0;) {
    uint32_t fan = static_cast<uint32_t>(std::llround(profile.fan[i]));
    TypeId range = types[i + 1];
    if (fan > 1) {
      Result<TypeId> set = schema.DefineSetType(
          "S" + std::to_string(i + 1), types[i + 1]);
      ASR_RETURN_IF_ERROR(set.status());
      set_types[i + 1] = *set;
      range = *set;
    }
    std::vector<gom::Attribute> attrs{
        gom::Attribute{"A" + std::to_string(i + 1), range, kInvalidTypeId}};
    Result<TypeId> t = schema.DefineTupleType("T" + std::to_string(i),
                                              {}, attrs);
    ASR_RETURN_IF_ERROR(t.status());
    types[i] = *t;
  }

  // Physical sizing: pad objects to size_i; pre-size set instances to their
  // final fan so they never relocate away from their co-located owner.
  gom::ObjectStore& store = base->store_;
  for (uint32_t i = 0; i <= n; ++i) {
    if (!profile.size.empty()) {
      store.SetObjectSize(types[i],
                          static_cast<uint32_t>(profile.size[i]));
    }
    if (i >= 1 && set_types[i] != kInvalidTypeId) {
      uint32_t fan = static_cast<uint32_t>(std::llround(profile.fan[i - 1]));
      store.SetObjectSize(set_types[i], 16 + 8 * fan);
      store.ColocateType(set_types[i], types[i - 1]);
    }
  }

  Rng rng(options.seed);

  // Pre-draw, per level, which objects will have a defined A_{i+1} (d_i of
  // them), so set instances are created only for those — right after their
  // owner, landing on the same page.
  std::vector<std::unordered_set<uint64_t>> defined(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t count = static_cast<uint64_t>(std::llround(profile.c[i]));
    uint64_t d = std::min(count,
                          static_cast<uint64_t>(std::llround(profile.d[i])));
    for (uint64_t idx : rng.SampleWithoutReplacement(count, d)) {
      defined[i].insert(idx);
    }
  }

  base->level_types_ = types;
  base->levels_.resize(n + 1);
  // Per level i < n: owner index -> its set instance.
  std::vector<std::unordered_map<uint64_t, Oid>> owner_sets(n);
  for (uint32_t i = 0; i <= n; ++i) {
    uint64_t count = static_cast<uint64_t>(std::llround(profile.c[i]));
    base->levels_[i].reserve(count);
    const bool has_sets = i < n && set_types[i + 1] != kInvalidTypeId;
    for (uint64_t k = 0; k < count; ++k) {
      Result<Oid> oid = store.CreateObject(types[i]);
      ASR_RETURN_IF_ERROR(oid.status());
      base->levels_[i].push_back(*oid);
      if (has_sets && defined[i].count(k) > 0) {
        Result<Oid> set = store.CreateSet(set_types[i + 1]);
        ASR_RETURN_IF_ERROR(set.status());
        owner_sets[i].emplace(k, *set);
      }
    }
  }

  // Wire references: fan_i distinct targets per defined owner. With the
  // default sharing assumption targets are drawn uniformly from the whole
  // next level; an explicit shar_i > 1 concentrates them on a pool of
  // e_{i+1} = d_i * fan_i / shar_i objects (Fig. 3), realizing the skew.
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t fan = static_cast<uint32_t>(std::llround(profile.fan[i]));
    uint64_t target_count = base->levels_[i + 1].size();
    std::string attr = "A" + std::to_string(i + 1);
    const bool has_sets = set_types[i + 1] != kInvalidTypeId;

    std::vector<uint64_t> pool;
    if (!profile.shar.empty() && profile.shar[i] > 1.0) {
      uint64_t pool_size = static_cast<uint64_t>(std::llround(
          profile.d[i] * profile.fan[i] / profile.shar[i]));
      pool_size = std::max<uint64_t>(fan, std::min(pool_size, target_count));
      pool = rng.SampleWithoutReplacement(target_count, pool_size);
    }
    auto target_at = [&](uint64_t idx) {
      return pool.empty() ? base->levels_[i + 1][idx]
                          : base->levels_[i + 1][pool[idx]];
    };
    uint64_t domain = pool.empty() ? target_count : pool.size();

    for (uint64_t owner_idx : defined[i]) {
      Oid owner = base->levels_[i][owner_idx];
      if (!has_sets) {
        ASR_RETURN_IF_ERROR(store.SetAttributeByName(
            owner, attr, AsrKey::FromOid(target_at(rng.Uniform(domain)))));
        continue;
      }
      Oid set_oid = owner_sets[i].at(owner_idx);
      ASR_RETURN_IF_ERROR(
          store.SetAttributeByName(owner, attr, AsrKey::FromOid(set_oid)));
      std::vector<uint64_t> picks = rng.SampleWithoutReplacement(
          domain, std::min<uint64_t>(fan, domain));
      for (uint64_t pick : picks) {
        ASR_RETURN_IF_ERROR(
            store.AddToSet(set_oid, AsrKey::FromOid(target_at(pick))));
      }
    }
  }

  // Build the path expression T0.A1.....An.
  std::vector<std::string> attrs;
  for (uint32_t i = 1; i <= n; ++i) attrs.push_back("A" + std::to_string(i));
  Result<PathExpression> path =
      PathExpression::Create(schema, types[0], attrs);
  ASR_RETURN_IF_ERROR(path.status());
  base->path_.emplace(std::move(*path));
  return base;
}

}  // namespace asr::workload
