#include "workload/mix_driver.h"

#include "workload/meter.h"

namespace asr::workload {

template <typename T>
const T& MixDriver::Pick(const std::vector<T>& entries) {
  ASR_CHECK(!entries.empty());
  double roll = rng_.NextDouble();
  double cumulative = 0;
  for (const T& entry : entries) {
    cumulative += entry.weight;
    if (roll < cumulative) return entry;
  }
  return entries.back();
}

Result<MixRunResult> MixDriver::Run(const cost::OperationMix& mix,
                                    double p_up, uint64_t operations) {
  if (mix.queries.empty() && mix.updates.empty()) {
    return Status::InvalidArgument("empty operation mix");
  }
  MixRunResult result;
  for (uint64_t op = 0; op < operations; ++op) {
    bool update = !mix.updates.empty() &&
                  (mix.queries.empty() || rng_.Bernoulli(p_up));
    if (update) {
      ASR_RETURN_IF_ERROR(RunUpdate(Pick(mix.updates), &result));
    } else {
      ASR_RETURN_IF_ERROR(RunQuery(Pick(mix.queries), &result));
    }
    ++result.operations;
  }
  return result;
}

Status MixDriver::RunQuery(const cost::WeightedQuery& query,
                           MixRunResult* result) {
  const PathExpression& path = base_->path();
  QueryEvaluator nav(base_->store(), &path);
  const bool supported =
      asr_ != nullptr && asr_->SupportsQuery(query.i, query.j);

  Status st = Status::OK();
  storage::AccessStats cost = Meter(base_->disk(), [&] {
    if (query.dir == cost::QueryDirection::kForward) {
      const auto& starts = base_->objects_at(query.i);
      AsrKey start =
          AsrKey::FromOid(starts[rng_.Uniform(starts.size())]);
      Result<std::vector<AsrKey>> r =
          supported ? asr_->EvalForward(start, query.i, query.j)
                    : nav.ForwardNoSupport(start, query.i, query.j);
      st = r.status();
    } else {
      const auto& targets = base_->objects_at(query.j);
      AsrKey target =
          AsrKey::FromOid(targets[rng_.Uniform(targets.size())]);
      Result<std::vector<AsrKey>> r =
          supported ? asr_->EvalBackward(target, query.i, query.j)
                    : nav.BackwardNoSupport(target, query.i, query.j);
      st = r.status();
    }
  });
  ASR_RETURN_IF_ERROR(st);
  result->total_page_accesses += cost.total();
  ++result->queries;
  return Status::OK();
}

Status MixDriver::RunUpdate(const cost::WeightedUpdate& update,
                            MixRunResult* result) {
  const PathExpression& path = base_->path();
  const uint32_t p = update.position;
  if (p >= path.n()) {
    return Status::InvalidArgument("update position beyond the path");
  }
  const PathStep& step = path.step(p + 1);
  gom::ObjectStore* store = base_->store();

  const auto& owners = base_->objects_at(p);
  const auto& targets = base_->objects_at(p + 1);
  Oid u = owners[rng_.Uniform(owners.size())];
  Oid w = targets[rng_.Uniform(targets.size())];
  AsrKey wkey = AsrKey::FromOid(w);

  Status st = Status::OK();
  storage::AccessStats cost = Meter(base_->disk(), [&] {
    if (!step.set_occurrence) {
      // Single-valued: assignment.
      Result<AsrKey> old_value = store->GetAttributeByName(u, step.attr_name);
      if (!old_value.ok()) {
        st = old_value.status();
        return;
      }
      st = store->SetAttributeByName(u, step.attr_name, wkey);
      if (!st.ok()) return;
      if (asr_ != nullptr) {
        st = asr_->OnAttributeAssigned(u, p, *old_value, wkey);
      }
      return;
    }
    // Set-valued ins_p: insert (or toggle out) a member.
    Result<AsrKey> set_key = store->GetAttributeByName(u, step.attr_name);
    if (!set_key.ok()) {
      st = set_key.status();
      return;
    }
    Oid set_oid;
    if (set_key->IsNull()) {
      Result<Oid> fresh = store->CreateSet(step.set_type);
      if (!fresh.ok()) {
        st = fresh.status();
        return;
      }
      set_oid = *fresh;
      st = store->SetAttributeByName(u, step.attr_name,
                                     AsrKey::FromOid(set_oid));
      if (!st.ok()) return;
    } else {
      set_oid = set_key->ToOid();
    }
    Result<bool> contains = store->SetContains(set_oid, wkey);
    if (!contains.ok()) {
      st = contains.status();
      return;
    }
    if (*contains) {
      st = store->RemoveFromSet(set_oid, wkey);
      if (st.ok() && asr_ != nullptr) st = asr_->OnEdgeRemoved(u, p, wkey);
    } else {
      st = store->AddToSet(set_oid, wkey);
      if (st.ok() && asr_ != nullptr) st = asr_->OnEdgeInserted(u, p, wkey);
    }
  });
  ASR_RETURN_IF_ERROR(st);
  result->total_page_accesses += cost.total();
  ++result->updates;
  return Status::OK();
}

}  // namespace asr::workload
