// Synthetic object bases realizing the paper's application profiles.
//
// The analytical model describes a path t0.A1.....An purely through the
// statistics (c_i, d_i, fan_i, size_i) of Fig. 3. This generator materializes
// a GOM schema and object base with exactly those statistics so that metered
// executions can be compared with the model:
//   - n+1 tuple types T0..Tn, padded to size_i bytes each;
//   - attribute A_{i+1} of T_i: single-valued when fan_i == 1, otherwise
//     set-valued through set type S_{i+1} = {T_{i+1}};
//   - exactly round(d_i) objects per level with a defined A_{i+1}, each
//     referencing round(fan_i) distinct uniformly drawn level-(i+1) objects
//     (the paper's default normal-distribution sharing assumption);
//   - set instances are sized to their final fan up front and co-located
//     with their owning object, so a set-valued hop costs the same page
//     access the model charges for in-object reference lists.
#ifndef ASR_WORKLOAD_SYNTHETIC_BASE_H_
#define ASR_WORKLOAD_SYNTHETIC_BASE_H_

#include <memory>
#include <optional>
#include <vector>

#include "asr/path_expression.h"
#include "cost/profile.h"
#include "gom/object_store.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace asr::workload {

struct GenerateOptions {
  uint64_t seed = 42;
  // Buffer frames retained between pins. Keep 0 for strict metering.
  size_t buffer_capacity = 0;
  // Where the pages physically live (storage/backend.h). Defaults to the
  // environment, like a bare Disk; benches pass explicit options to run the
  // same workload on both backends in one process.
  storage::DiskOptions disk = storage::DiskOptions::FromEnv();
};

class SyntheticBase {
 public:
  static Result<std::unique_ptr<SyntheticBase>> Generate(
      const cost::ApplicationProfile& profile,
      const GenerateOptions& options = {});

  const gom::Schema& schema() const { return schema_; }
  gom::ObjectStore* store() { return &store_; }
  storage::Disk* disk() { return &disk_; }
  storage::BufferManager* buffers() { return &buffers_; }

  // The generated path T0.A1.....An.
  const PathExpression& path() const { return *path_; }

  uint32_t n() const { return static_cast<uint32_t>(levels_.size()) - 1; }
  TypeId type_at(uint32_t level) const { return level_types_[level]; }
  const std::vector<Oid>& objects_at(uint32_t level) const {
    return levels_[level];
  }

 private:
  SyntheticBase(size_t buffer_capacity, const storage::DiskOptions& disk)
      : disk_(disk), buffers_(&disk_, buffer_capacity),
        store_(&schema_, &buffers_) {}

  gom::Schema schema_;
  storage::Disk disk_;
  storage::BufferManager buffers_;
  gom::ObjectStore store_;
  std::optional<PathExpression> path_;
  std::vector<TypeId> level_types_;
  std::vector<std::vector<Oid>> levels_;
};

}  // namespace asr::workload

#endif  // ASR_WORKLOAD_SYNTHETIC_BASE_H_
