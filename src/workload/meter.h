// Metering helper: page-access cost of one operation.
#ifndef ASR_WORKLOAD_METER_H_
#define ASR_WORKLOAD_METER_H_

#include <utility>

#include "storage/access_stats.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace asr::workload {

// What one metered operation cost. Inherits the page counters so existing
// call sites that assign the result to a storage::AccessStats keep working;
// the buffer deltas say how much of the logical page traffic a cache
// absorbed (both zero when metering without a BufferManager handle).
struct MeterResult : storage::AccessStats {
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
};

// Runs `op` and returns the secondary-storage accesses it caused. The
// buffer manager should be configured with capacity 0 (strict metering) for
// results comparable to the analytical model. `op` is any callable; it is
// invoked exactly once, inline — no std::function indirection on the
// metered path.
template <typename Op>
inline MeterResult Meter(storage::Disk* disk, Op&& op) {
  storage::AccessStats before = disk->stats();
  std::forward<Op>(op)();
  MeterResult out;
  static_cast<storage::AccessStats&>(out) = disk->stats() - before;
  return out;
}

// Overload that also attributes buffer behavior: the returned buffer
// hit/miss deltas cover `op` only. Pass the pool the operation pins
// through.
template <typename Op>
inline MeterResult Meter(storage::BufferManager* buffers, Op&& op) {
  storage::Disk* disk = buffers->disk();
  storage::AccessStats before = disk->stats();
  uint64_t hits0 = buffers->hits();
  uint64_t misses0 = buffers->misses();
  std::forward<Op>(op)();
  MeterResult out;
  static_cast<storage::AccessStats&>(out) = disk->stats() - before;
  out.buffer_hits = buffers->hits() - hits0;
  out.buffer_misses = buffers->misses() - misses0;
  return out;
}

}  // namespace asr::workload

#endif  // ASR_WORKLOAD_METER_H_
