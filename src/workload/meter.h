// Metering helper: page-access cost of one operation.
#ifndef ASR_WORKLOAD_METER_H_
#define ASR_WORKLOAD_METER_H_

#include <functional>

#include "storage/access_stats.h"
#include "storage/disk.h"

namespace asr::workload {

// Runs `op` and returns the secondary-storage accesses it caused. The
// buffer manager should be configured with capacity 0 (strict metering) for
// results comparable to the analytical model.
inline storage::AccessStats Meter(storage::Disk* disk,
                                  const std::function<void()>& op) {
  storage::AccessStats before = disk->stats();
  op();
  return disk->stats() - before;
}

}  // namespace asr::workload

#endif  // ASR_WORKLOAD_METER_H_
