// Records the database usage pattern as an operation mix (§6.4.1, §7).
//
// "For a recorded database usage pattern the system could (semi-)
// automatically adjust the physical database design" — this recorder
// aggregates executed path queries and updates into the M = (Qmix, Umix,
// P_up) triple the cost model consumes.
#ifndef ASR_WORKLOAD_USAGE_RECORDER_H_
#define ASR_WORKLOAD_USAGE_RECORDER_H_

#include <cstdint>
#include <map>

#include "cost/opmix.h"

namespace asr::workload {

class UsageRecorder {
 public:
  UsageRecorder() = default;

  // One executed query Q_{i,j}(dir).
  void RecordQuery(cost::QueryDirection dir, uint32_t i, uint32_t j) {
    ++queries_[QueryKey{dir, i, j}];
    ++query_count_;
  }

  // One executed update ins_i (an edge change at attribute A_{i+1}).
  void RecordUpdate(uint32_t position) {
    ++updates_[position];
    ++update_count_;
  }

  uint64_t query_count() const { return query_count_; }
  uint64_t update_count() const { return update_count_; }
  uint64_t operation_count() const { return query_count_ + update_count_; }

  // Fraction of recorded operations that were updates (the mix's P_up).
  double UpdateProbability() const {
    uint64_t total = operation_count();
    return total == 0 ? 0.0
                      : static_cast<double>(update_count_) / total;
  }

  // The recorded mix with weights normalized within queries and updates.
  cost::OperationMix ToMix() const;

  void Reset();

 private:
  struct QueryKey {
    cost::QueryDirection dir;
    uint32_t i;
    uint32_t j;
    bool operator<(const QueryKey& other) const {
      if (dir != other.dir) return dir < other.dir;
      if (i != other.i) return i < other.i;
      return j < other.j;
    }
  };

  std::map<QueryKey, uint64_t> queries_;
  std::map<uint32_t, uint64_t> updates_;
  uint64_t query_count_ = 0;
  uint64_t update_count_ = 0;
};

}  // namespace asr::workload

#endif  // ASR_WORKLOAD_USAGE_RECORDER_H_
