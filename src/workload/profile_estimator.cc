#include "workload/profile_estimator.h"

#include <unordered_map>
#include <unordered_set>

#include "storage/page.h"

namespace asr::workload {

Result<cost::ApplicationProfile> EstimateProfile(gom::ObjectStore* store,
                                                 const PathExpression& path) {
  const gom::Schema& schema = store->schema();
  const uint32_t n = path.n();

  cost::ApplicationProfile profile;
  profile.n = n;
  profile.c.assign(n + 1, 0.0);
  profile.d.assign(n, 0.0);
  profile.fan.assign(n, 1.0);
  profile.size.assign(n + 1, 8.0);
  profile.shar.assign(n, 1.0);

  // Terminal atomic values are counted as they are encountered at the last
  // hop; their "extent" is the set of distinct values.
  std::unordered_set<AsrKey> terminal_values;

  for (uint32_t i = 0; i < n; ++i) {
    const PathStep& step = path.step(i + 1);
    double count = 0;
    double defined = 0;
    double edges = 0;
    double pages = 0;
    std::unordered_set<AsrKey> referenced;

    for (TypeId t = 0; t < schema.type_count(); ++t) {
      if (!schema.IsTuple(t) || !schema.IsSubtypeOf(t, step.domain_type)) {
        continue;
      }
      count += static_cast<double>(store->ObjectCount(t));
      pages += static_cast<double>(store->PageCount(t));
      Status st = store->ScanWithTargets(
          t, step.attr_name,
          [&](Oid, const std::vector<AsrKey>& targets) -> Status {
            ++defined;  // NULL attributes are skipped by ScanWithTargets
            edges += static_cast<double>(targets.size());
            for (AsrKey target : targets) {
              referenced.insert(target);
              if (i + 1 == n && path.terminal_is_atomic()) {
                terminal_values.insert(target);
              }
            }
            return Status::OK();
          });
      ASR_RETURN_IF_ERROR(st);
    }

    profile.c[i] = count;
    profile.d[i] = defined;
    profile.fan[i] = defined > 0 ? std::max(1.0, edges / defined) : 1.0;
    profile.shar[i] =
        referenced.empty()
            ? 1.0
            : std::max(1.0, edges / static_cast<double>(referenced.size()));
    // Effective object size: what the extent actually occupies per object,
    // including co-located set instances — this is what drives op_i.
    profile.size[i] =
        count > 0 ? std::max(8.0, pages * storage::kPageSize / count) : 8.0;
  }

  // Terminal level.
  TypeId terminal = path.type_at(n);
  if (schema.IsAtomic(terminal)) {
    profile.c[n] = std::max<double>(1.0, terminal_values.size());
    profile.size[n] = 8.0;
  } else {
    double count = 0;
    double pages = 0;
    for (TypeId t = 0; t < schema.type_count(); ++t) {
      if (!schema.IsTuple(t) || !schema.IsSubtypeOf(t, terminal)) continue;
      count += static_cast<double>(store->ObjectCount(t));
      pages += static_cast<double>(store->PageCount(t));
    }
    profile.c[n] = std::max(1.0, count);
    profile.size[n] =
        count > 0 ? std::max(8.0, pages * storage::kPageSize / count) : 8.0;
  }

  // Keep d consistent with c (deleted objects can leave d dangling).
  for (uint32_t i = 0; i < n; ++i) {
    profile.c[i] = std::max(profile.c[i], 1.0);
    profile.d[i] = std::min(profile.d[i], profile.c[i]);
  }
  ASR_RETURN_IF_ERROR(profile.Validate());
  return profile;
}

}  // namespace asr::workload
