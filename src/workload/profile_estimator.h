// Derives the cost model's application profile from a live object base.
//
// The paper's conclusion (§7) proposes integrating the cost model into the
// DBMS: "in a 'real' database application one should periodically verify
// that the once envisioned usage profile actually remains valid under
// operation". This estimator measures, for a given path expression, the
// statistics of Fig. 3 — c_i, d_i, fan_i, shar_i, size_i — directly from the
// stored extension, so the design advisor can run against reality instead of
// an envisioned profile.
#ifndef ASR_WORKLOAD_PROFILE_ESTIMATOR_H_
#define ASR_WORKLOAD_PROFILE_ESTIMATOR_H_

#include "asr/path_expression.h"
#include "cost/profile.h"
#include "gom/object_store.h"

namespace asr::workload {

// Scans the extents along `path` and returns the measured profile:
//   c_i    — live objects whose type conforms to t_i,
//   d_i    — those with a non-NULL A_{i+1} (an empty set counts as defined),
//   fan_i  — average references per defined object (1 for single-valued),
//   shar_i — average in-degree over referenced t_{i+1} objects (>= 1),
//   size_i — average record bytes of t_i objects.
// Costs page accesses proportional to the extents scanned (it reads every
// object once).
Result<cost::ApplicationProfile> EstimateProfile(gom::ObjectStore* store,
                                                 const PathExpression& path);

}  // namespace asr::workload

#endif  // ASR_WORKLOAD_PROFILE_ESTIMATOR_H_
