#include "workload/usage_recorder.h"

namespace asr::workload {

cost::OperationMix UsageRecorder::ToMix() const {
  cost::OperationMix mix;
  for (const auto& [key, count] : queries_) {
    cost::WeightedQuery q;
    q.weight = query_count_ > 0
                   ? static_cast<double>(count) / query_count_
                   : 0.0;
    q.dir = key.dir;
    q.i = key.i;
    q.j = key.j;
    mix.queries.push_back(q);
  }
  for (const auto& [position, count] : updates_) {
    cost::WeightedUpdate u;
    u.weight = update_count_ > 0
                   ? static_cast<double>(count) / update_count_
                   : 0.0;
    u.position = position;
    mix.updates.push_back(u);
  }
  return mix;
}

void UsageRecorder::Reset() {
  queries_.clear();
  updates_.clear();
  query_count_ = 0;
  update_count_ = 0;
}

}  // namespace asr::workload
