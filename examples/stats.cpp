// Live telemetry: background sampler, alert rules, event journal, and
// Prometheus exposition over a running workload.
//
// Generates a file-backed synthetic base (wall-clock currency), starts a
// TelemetrySampler with the stock alert rules, and drives two phases of a
// mix workload: a healthy phase, then a faulted phase where a partition's
// forward tree is scribbled with zeros (valid checksum, structural triage
// fails) so Recover() quarantines it and queries degrade to object-base
// navigation. The degraded-hop alert fires on the next sample window; the
// operational event journal records the quarantine and recovery; the final
// exposition prints live p50/p99 read/write/sync latencies, the sample
// tail, the fired alerts, the event journal, and the Prometheus text
// format of the full metrics registry.
//
// Build & run:  cmake -B build && cmake --build build &&
//               ./build/examples/stats          (ASR_TELEMETRY_MS=50 ./...)
#include <chrono>
#include <cstdio>
#include <thread>

#include "asr/access_support_relation.h"
#include "asr/decomposition.h"
#include "cost/profile.h"
#include "obs/events.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/sampler.h"
#include "storage/page.h"
#include "workload/mix_driver.h"
#include "workload/synthetic_base.h"

using namespace asr;

namespace {

void PrintSample(const obs::TelemetrySample& s) {
  obs::HistogramSnapshot read = s.histograms.count("live.storage.read_us")
                                    ? s.histograms.at("live.storage.read_us")
                                    : obs::HistogramSnapshot{};
  obs::HistogramSnapshot write =
      s.histograms.count("live.storage.write_us")
          ? s.histograms.at("live.storage.write_us")
          : obs::HistogramSnapshot{};
  obs::HistogramSnapshot sync = s.histograms.count("live.storage.sync_us")
                                    ? s.histograms.at("live.storage.sync_us")
                                    : obs::HistogramSnapshot{};
  std::printf(
      "  sample#%-3llu dt=%6.1fms  hits/s=%8.0f  degraded/s=%6.0f  "
      "read p50/p99=%llu/%llu us  write p50/p99=%llu/%llu us  "
      "sync p50/p99=%llu/%llu us\n",
      static_cast<unsigned long long>(s.seq),
      static_cast<double>(s.dt_us) / 1000.0, s.rate("live.buffer.hits"),
      s.rate("live.degraded.hops"),
      static_cast<unsigned long long>(read.P50()),
      static_cast<unsigned long long>(read.P99()),
      static_cast<unsigned long long>(write.P50()),
      static_cast<unsigned long long>(write.P99()),
      static_cast<unsigned long long>(sync.P50()),
      static_cast<unsigned long long>(sync.P99()));
}

}  // namespace

int main() {
  // File backend with group-flush durability: every seam operation is
  // wall-clock timed into the LiveTelemetry hub.
  storage::DiskOptions disk = storage::DiskOptions::File("", /*mmap=*/false);
  disk.durability = storage::DurabilityMode::kGroup;
  disk.flush_batch = 8;

  cost::ApplicationProfile profile;
  profile.n = 3;
  profile.c = {120, 120, 120, 120};
  profile.d = {80, 80, 80};
  profile.fan = {2, 2, 2};
  ASR_CHECK(profile.Validate().ok());

  workload::GenerateOptions gen;
  gen.seed = 7;
  gen.buffer_capacity = 64;  // a real cache so hits flow into the hub
  gen.disk = disk;
  auto base = workload::SyntheticBase::Generate(profile, gen).value();
  const PathExpression& path = base->path();

  Decomposition decomp = Decomposition::Of({0, 2, 3}, path.n()).value();
  auto asr = AccessSupportRelation::Build(base->store(), path,
                                          ExtensionKind::kFull, decomp)
                 .value();

  // Sampler: ASR_TELEMETRY_MS, or 50ms when unset, with the stock rules
  // (degraded-hop rate > 0, hit-ratio < 0.95, sync p99 > 100ms).
  obs::TelemetrySampler::Options opts =
      obs::TelemetrySampler::Options::FromEnv();
  if (opts.interval_ms == 0) opts.interval_ms = 50;
  obs::TelemetrySampler sampler(opts);
  for (obs::AlertRule& rule : obs::DefaultAlertRules(0.95, 100'000)) {
    sampler.AddRule(std::move(rule));
  }
  sampler.OnAlert([](const obs::AlertFiring& firing) {
    std::printf("  !! ALERT %s (%s) at sample#%llu\n", firing.rule.c_str(),
                firing.detail.c_str(),
                static_cast<unsigned long long>(firing.sample_seq));
  });
  const bool live = sampler.Start();
  std::printf("sampler: %s (interval %llu ms)\n",
              live ? "running" : "disabled (metrics off or interval 0)",
              static_cast<unsigned long long>(opts.interval_ms));

  cost::OperationMix mix;
  mix.queries = {{0.5, cost::QueryDirection::kForward, 0, path.n()},
                 {0.5, cost::QueryDirection::kBackward, 0, path.n()}};
  mix.updates = {{1.0, 1}};
  workload::MixDriver driver(base.get(), asr.get(), /*seed=*/7);

  std::printf("\n=== phase 1: healthy mix workload ===\n");
  auto healthy = driver.Run(mix, /*p_up=*/0.3, /*operations=*/400).value();
  std::printf("  %llu ops (%llu queries, %llu updates)\n",
              static_cast<unsigned long long>(healthy.operations),
              static_cast<unsigned long long>(healthy.queries),
              static_cast<unsigned long long>(healthy.updates));
  std::this_thread::sleep_for(
      std::chrono::milliseconds(opts.interval_ms * 2));

  std::printf("\n=== phase 2: inject fault, recover, degraded workload ===\n");
  // Scribble zeros over a page of partition 0's forward tree: the checksum
  // stays valid, so Recover()'s structural triage quarantines the partition
  // and its slice degrades to object-base navigation.
  // Write back every dirty frame first: DropAll() below simulates a crash
  // by discarding the pool, and the only damage we want on disk afterwards
  // is the injected scribble.
  ASR_CHECK(base->buffers()->FlushAll().ok());
  uint32_t seg = asr->partition_store(0)->forward->segment();
  storage::Page zeros;
  ASR_CHECK(base->disk()->WritePage(storage::PageId{seg, 0}, zeros).ok());
  base->buffers()->DropAll();
  RecoveryReport report;
  ASR_CHECK(asr->Recover(&report).ok());
  std::printf("  %s\n", report.ToString().c_str());
  ASR_CHECK(asr->degraded());

  auto degraded = driver.Run(mix, /*p_up=*/0.0, /*operations=*/200).value();
  std::printf("  %llu degraded-mode queries ran\n",
              static_cast<unsigned long long>(degraded.queries));
  // Force one synchronous window evaluation so the degraded-hop alert is
  // guaranteed to fire even with a very long interval.
  sampler.SampleOnce();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(opts.interval_ms * 2));
  sampler.Stop();

  std::printf("\n=== sample tail (latest %zu of %llu) ===\n",
              sampler.Samples().size() < 5 ? sampler.Samples().size()
                                           : static_cast<size_t>(5),
              static_cast<unsigned long long>(sampler.samples_taken()));
  auto samples = sampler.Samples();
  size_t first = samples.size() > 5 ? samples.size() - 5 : 0;
  for (size_t i = first; i < samples.size(); ++i) PrintSample(samples[i]);

  std::printf("\n=== fired alerts ===\n");
  for (const obs::AlertFiring& firing : sampler.Firings()) {
    std::printf("  %-20s %s\n", firing.rule.c_str(), firing.detail.c_str());
  }

  std::printf("\n=== operational event journal ===\n");
  for (const obs::Event& e : obs::EventLog::Instance().Snapshot()) {
    std::printf("  #%-4llu %-22s %s\n",
                static_cast<unsigned long long>(e.seq),
                obs::EventKindName(e.kind), e.detail.c_str());
  }

  // Repair and finish with the full exposition.
  ASR_CHECK(asr->Repair().ok());

  obs::MetricsRegistry registry;
  base->disk()->ExportMetrics(&registry, "disk");
  base->buffers()->ExportMetrics(&registry, "buffers");
  asr->ExportMetrics(&registry, "asr");
  obs::CollectLive(&registry);
  std::printf("\n=== prometheus exposition (excerpt) ===\n");
  std::string text = obs::ToPrometheusText(registry);
  // The full exposition is long; print the live.* and latency series.
  size_t printed = 0;
  size_t pos = 0;
  while (pos < text.size() && printed < 60) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    if (line.find("asr_live_") != std::string::npos ||
        line.find("_us_") != std::string::npos) {
      std::printf("%s\n", line.c_str());
      ++printed;
    }
    pos = end + 1;
  }
  std::printf("(%zu exposition bytes total)\n", text.size());
  return 0;
}
