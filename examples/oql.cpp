// Query-language example: the paper's Queries 1-3 written in its SQL-like
// notation and executed through the QueryEngine — first navigationally, then
// through access support relations — with page-access metering.
//
// Pass queries as command-line arguments to run your own against the
// built-in company database, e.g.:
//   ./oql 'select p.Name from p in Product'
#include <cstdio>

#include "asr/access_support_relation.h"
#include "gom/object_store.h"
#include "lang/executor.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "workload/meter.h"

using namespace asr;

namespace {

// Builds the §2.3 company database (Figure 2) plus a robot fleet (§2.2).
struct Database {
  gom::Schema schema;
  storage::Disk disk;
  storage::BufferManager buffers{&disk, 0};
  std::unique_ptr<gom::ObjectStore> store;
  std::unique_ptr<AccessSupportRelation> division_asr;
  std::unique_ptr<AccessSupportRelation> robot_asr;
};

std::unique_ptr<Database> BuildDatabase() {
  auto db = std::make_unique<Database>();
  gom::Schema& s = db->schema;
  using S = gom::Schema;

  TypeId basepart =
      s.DefineTupleType("BasePart", {},
                        {{"Name", S::kStringType, kInvalidTypeId},
                         {"Price", S::kDecimalType, kInvalidTypeId}})
          .value();
  TypeId basepartset = s.DefineSetType("BasePartSET", basepart).value();
  TypeId product =
      s.DefineTupleType("Product", {},
                        {{"Name", S::kStringType, kInvalidTypeId},
                         {"Composition", basepartset, kInvalidTypeId}})
          .value();
  TypeId prodset = s.DefineSetType("ProdSET", product).value();
  TypeId division =
      s.DefineTupleType("Division", {},
                        {{"Name", S::kStringType, kInvalidTypeId},
                         {"Manufactures", prodset, kInvalidTypeId}})
          .value();
  TypeId manufacturer =
      s.DefineTupleType("MANUFACTURER", {},
                        {{"Name", S::kStringType, kInvalidTypeId},
                         {"Location", S::kStringType, kInvalidTypeId}})
          .value();
  TypeId tool =
      s.DefineTupleType("TOOL", {},
                        {{"Function", S::kStringType, kInvalidTypeId},
                         {"ManufacturedBy", manufacturer, kInvalidTypeId}})
          .value();
  TypeId arm = s.DefineTupleType("ARM", {},
                                 {{"MountedTool", tool, kInvalidTypeId}})
                   .value();
  TypeId robot =
      s.DefineTupleType("ROBOT", {},
                        {{"Name", S::kStringType, kInvalidTypeId},
                         {"Arm", arm, kInvalidTypeId}})
          .value();

  db->store = std::make_unique<gom::ObjectStore>(&db->schema, &db->buffers);
  gom::ObjectStore& st = *db->store;

  // Company extension (Figure 2).
  auto div = [&](const char* name) {
    Oid d = st.CreateObject(division).value();
    ASR_CHECK(st.SetString(d, "Name", name).ok());
    return d;
  };
  auto prod = [&](const char* name) {
    Oid p = st.CreateObject(product).value();
    ASR_CHECK(st.SetString(p, "Name", name).ok());
    return p;
  };
  auto part = [&](const char* name, double price) {
    Oid b = st.CreateObject(basepart).value();
    ASR_CHECK(st.SetString(b, "Name", name).ok());
    ASR_CHECK(st.SetDecimal(b, "Price", price).ok());
    return b;
  };
  Oid autod = div("Auto"), truck = div("Truck");
  div("Space");
  Oid sec = prod("560 SEC"), trak = prod("MB Trak"), sausage = prod("Sausage");
  (void)trak;
  Oid door = part("Door", 1205.50), pepper = part("Pepper", 0.12);
  Oid ps_auto = st.CreateSet(prodset).value();
  ASR_CHECK(st.SetRef(autod, "Manufactures", ps_auto).ok());
  ASR_CHECK(st.AddToSet(ps_auto, AsrKey::FromOid(sec)).ok());
  Oid ps_truck = st.CreateSet(prodset).value();
  ASR_CHECK(st.SetRef(truck, "Manufactures", ps_truck).ok());
  ASR_CHECK(st.AddToSet(ps_truck, AsrKey::FromOid(sec)).ok());
  ASR_CHECK(st.AddToSet(ps_truck, AsrKey::FromOid(trak)).ok());
  Oid bp_sec = st.CreateSet(basepartset).value();
  ASR_CHECK(st.SetRef(sec, "Composition", bp_sec).ok());
  ASR_CHECK(st.AddToSet(bp_sec, AsrKey::FromOid(door)).ok());
  Oid bp_sau = st.CreateSet(basepartset).value();
  ASR_CHECK(st.SetRef(sausage, "Composition", bp_sau).ok());
  ASR_CHECK(st.AddToSet(bp_sau, AsrKey::FromOid(pepper)).ok());

  // Robot fleet (Figure 1).
  Oid robclone = st.CreateObject(manufacturer).value();
  ASR_CHECK(st.SetString(robclone, "Name", "RobClone").ok());
  ASR_CHECK(st.SetString(robclone, "Location", "Utopia").ok());
  auto mk_robot = [&](const char* name, const char* fn, Oid maker) {
    Oid t = st.CreateObject(tool).value();
    ASR_CHECK(st.SetString(t, "Function", fn).ok());
    if (!maker.IsNull()) ASR_CHECK(st.SetRef(t, "ManufacturedBy", maker).ok());
    Oid a = st.CreateObject(arm).value();
    ASR_CHECK(st.SetRef(a, "MountedTool", t).ok());
    Oid r = st.CreateObject(robot).value();
    ASR_CHECK(st.SetString(r, "Name", name).ok());
    ASR_CHECK(st.SetRef(r, "Arm", a).ok());
    return r;
  };
  mk_robot("R2D2", "welding", robclone);
  mk_robot("X4D5", "gripping", robclone);
  mk_robot("Robi", "gripping", Oid::Null());

  // Access support relations for the two hot paths.
  PathExpression division_path =
      PathExpression::Parse(s, division, "Manufactures.Composition.Name")
          .value();
  db->division_asr = AccessSupportRelation::Build(
                         &st, division_path, ExtensionKind::kFull,
                         Decomposition::Binary(division_path.n()))
                         .value();
  PathExpression robot_path =
      PathExpression::Parse(s, robot,
                            "Arm.MountedTool.ManufacturedBy.Location")
          .value();
  db->robot_asr = AccessSupportRelation::Build(
                      &st, robot_path, ExtensionKind::kLeftComplete,
                      Decomposition::None(robot_path.n()))
                      .value();
  return db;
}

void RunQuery(Database* db, lang::QueryEngine* engine, const char* text) {
  std::printf("oql> %s\n", text);
  Result<lang::QueryEngine::QueryPlan> plan = engine->Explain(text);
  if (plan.ok()) std::printf("%s", plan->ToString().c_str());
  Result<std::vector<AsrKey>> result(std::vector<AsrKey>{});
  storage::AccessStats cost = workload::Meter(
      &db->disk, [&] { result = engine->Execute(text); });
  if (!result.ok()) {
    std::printf("  error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  for (AsrKey k : *result) {
    std::printf("  %s\n", engine->Format(k).c_str());
  }
  std::printf("  (%zu results, %llu page accesses)\n\n", result->size(),
              static_cast<unsigned long long>(cost.total()));
}

}  // namespace

int main(int argc, char** argv) {
  auto db = BuildDatabase();
  lang::QueryEngine engine(db->store.get());
  engine.RegisterAsr(db->division_asr.get());
  engine.RegisterAsr(db->robot_asr.get());

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) RunQuery(db.get(), &engine, argv[i]);
    return 0;
  }

  // The paper's queries.
  RunQuery(db.get(), &engine,
           "select r.Name from r in ROBOT where "
           "r.Arm.MountedTool.ManufacturedBy.Location = \"Utopia\"");
  RunQuery(db.get(), &engine,
           "select d.Name from d in Division, b in "
           "d.Manufactures.Composition where b.Name = \"Door\"");
  RunQuery(db.get(), &engine,
           "select d.Manufactures.Composition.Name from d in Division "
           "where d.Name = \"Auto\"");
  // And a few more.
  RunQuery(db.get(), &engine,
           "select b.Name from b in BasePart where b.Price = 1205.50");
  RunQuery(db.get(), &engine, "select d.Name from d in Division");

  std::printf("evaluations: %llu via access support relations, %llu "
              "navigational\n",
              static_cast<unsigned long long>(engine.supported_evals()),
              static_cast<unsigned long long>(engine.navigational_evals()));
  return 0;
}
