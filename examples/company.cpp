// The paper's company example (§2.3, Figure 2): a path through two
// set-valued attributes, the four extensions side by side, and Queries 2/3.
//
//   type Division is [Name: STRING, Manufactures: ProdSET];
//   type ProdSET  is {Product};
//   type Product  is [Name: STRING, Composition: BasePartSET];
//   type BasePartSET is {BasePart};
//   type BasePart is [Name: STRING, Price: DECIMAL];
#include <cstdio>

#include "asr/access_support_relation.h"
#include "asr/extension.h"
#include "gom/object_store.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

using namespace asr;

int main() {
  gom::Schema schema;
  using S = gom::Schema;
  TypeId basepart =
      schema
          .DefineTupleType("BasePart", {},
                           {{"Name", S::kStringType, kInvalidTypeId},
                            {"Price", S::kDecimalType, kInvalidTypeId}})
          .value();
  TypeId basepartset = schema.DefineSetType("BasePartSET", basepart).value();
  TypeId product =
      schema
          .DefineTupleType("Product", {},
                           {{"Name", S::kStringType, kInvalidTypeId},
                            {"Composition", basepartset, kInvalidTypeId}})
          .value();
  TypeId prodset = schema.DefineSetType("ProdSET", product).value();
  TypeId division =
      schema
          .DefineTupleType("Division", {},
                           {{"Name", S::kStringType, kInvalidTypeId},
                            {"Manufactures", prodset, kInvalidTypeId}})
          .value();

  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  gom::ObjectStore store(&schema, &buffers);

  auto make_division = [&](const char* name) {
    Oid d = store.CreateObject(division).value();
    ASR_CHECK(store.SetString(d, "Name", name).ok());
    return d;
  };
  auto make_product = [&](const char* name) {
    Oid p = store.CreateObject(product).value();
    ASR_CHECK(store.SetString(p, "Name", name).ok());
    return p;
  };
  auto make_part = [&](const char* name, double price) {
    Oid b = store.CreateObject(basepart).value();
    ASR_CHECK(store.SetString(b, "Name", name).ok());
    ASR_CHECK(store.SetDecimal(b, "Price", price).ok());
    return b;
  };

  // Figure 2's extension.
  Oid auto_div = make_division("Auto");
  Oid truck_div = make_division("Truck");
  make_division("Space");  // Manufactures stays NULL

  Oid sec560 = make_product("560 SEC");
  Oid mbtrak = make_product("MB Trak");  // Composition stays NULL
  Oid sausage = make_product("Sausage");

  Oid door = make_part("Door", 1205.50);
  Oid pepper = make_part("Pepper", 0.12);

  Oid auto_products = store.CreateSet(prodset).value();
  ASR_CHECK(store.SetRef(auto_div, "Manufactures", auto_products).ok());
  ASR_CHECK(store.AddToSet(auto_products, AsrKey::FromOid(sec560)).ok());
  Oid truck_products = store.CreateSet(prodset).value();
  ASR_CHECK(store.SetRef(truck_div, "Manufactures", truck_products).ok());
  ASR_CHECK(store.AddToSet(truck_products, AsrKey::FromOid(sec560)).ok());
  ASR_CHECK(store.AddToSet(truck_products, AsrKey::FromOid(mbtrak)).ok());

  Oid sec_parts = store.CreateSet(basepartset).value();
  ASR_CHECK(store.SetRef(sec560, "Composition", sec_parts).ok());
  ASR_CHECK(store.AddToSet(sec_parts, AsrKey::FromOid(door)).ok());
  Oid sausage_parts = store.CreateSet(basepartset).value();
  ASR_CHECK(store.SetRef(sausage, "Composition", sausage_parts).ok());
  ASR_CHECK(store.AddToSet(sausage_parts, AsrKey::FromOid(pepper)).ok());

  // --- Path and its four extensions ----------------------------------------
  PathExpression path =
      PathExpression::Parse(schema, division, "Manufactures.Composition.Name")
          .value();
  std::printf("path: %s  (n=%u, k=%u set occurrences, arity %u)\n\n",
              path.ToString().c_str(), path.n(), path.k(), path.m() + 1);

  auto render = [&](const rel::Relation& ext) {
    std::string out;
    for (const rel::Row& row : ext.rows()) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ", ";
        out += row[i].IsString()
                   ? "\"" + store.string_dict()->Get(row[i].ToStringCode()) +
                         "\""
                   : row[i].ToString();
      }
      out += "\n";
    }
    return out;
  };
  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    rel::Relation ext =
        ComputeExtension(&store, path, kind, /*drop_set_columns=*/false)
            .value();
    std::printf("E_%s (%zu tuples):\n%s\n", ExtensionKindName(kind).c_str(),
                ext.size(), render(ext).c_str());
  }

  // --- Queries 2 and 3 over a full-extension ASR -----------------------------
  auto asr = AccessSupportRelation::Build(&store, path, ExtensionKind::kFull,
                                          Decomposition::Binary(path.n()))
                 .value();

  // Query 2: which Division uses a BasePart named "Door"?
  // (Backward over positions 0..3: the terminal column holds Name values.)
  AsrKey door_name = AsrKey::FromString("Door", store.string_dict());
  std::printf("Query 2 — divisions using a BasePart named \"Door\":\n");
  for (AsrKey d : asr->EvalBackward(door_name, 0, 3).value()) {
    std::printf("  %s\n", store.GetString(d.ToOid(), "Name")->c_str());
  }

  // Query 3: all BasePart names used by the division named "Auto".
  std::printf("Query 3 — BasePart names used by division \"Auto\":\n");
  for (AsrKey name : asr->EvalForward(AsrKey::FromOid(auto_div), 0, 3)
                         .value()) {
    std::printf("  %s\n",
                store.string_dict()->Get(name.ToStringCode()).c_str());
  }
  return 0;
}
