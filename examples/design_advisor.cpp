// Physical design advisor example: the application of the framework the
// paper proposes in its conclusion — pick the best extension and
// decomposition for a recorded usage profile, and show how the choice flips
// as the update probability grows.
#include <cstdio>

#include "advisor/advisor.h"

using namespace asr;

int main() {
  // An engineering application profile (the paper's §4.4.1 table).
  cost::ApplicationProfile profile;
  profile.n = 4;
  profile.c = {1000, 5000, 10000, 50000, 100000};
  profile.d = {900, 4000, 8000, 20000};
  profile.fan = {2, 2, 3, 4};
  profile.size = {500, 400, 300, 300, 100};
  cost::CostModel model(profile);

  // The recorded usage profile: mostly whole-path backward queries, plus a
  // mid-path forward query and updates near the right end of the path.
  cost::OperationMix mix;
  mix.queries = {{0.5, cost::QueryDirection::kBackward, 0, 4},
                 {0.25, cost::QueryDirection::kBackward, 0, 3},
                 {0.25, cost::QueryDirection::kForward, 1, 2}};
  mix.updates = {{0.5, 2}, {0.5, 3}};

  std::printf("design space: 4 extensions x %zu decompositions\n\n",
              Decomposition::EnumerateAll(profile.n).size());

  for (double p_up : {0.05, 0.3, 0.7}) {
    std::printf("update probability %.2f — top 5 designs:\n", p_up);
    std::vector<advisor::DesignChoice> ranked =
        advisor::DesignAdvisor::Rank(model, mix, p_up);
    for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
      std::printf("  %zu. %s\n", i + 1, ranked[i].ToString().c_str());
    }
    std::printf("\n");
  }

  // Constrained choice: a storage budget forces a leaner design.
  advisor::DesignChoice best =
      advisor::DesignAdvisor::Best(model, mix, 0.05);
  advisor::DesignChoice lean = advisor::DesignAdvisor::BestWithinBudget(
      model, mix, 0.05, best.storage_bytes * 0.5);
  std::printf("unconstrained best: %s\n", best.ToString().c_str());
  std::printf("under a 50%% storage budget: %s\n", lean.ToString().c_str());
  return 0;
}
