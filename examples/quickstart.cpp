// Quickstart: the paper's robot example (§2.2).
//
// Models ROBOT -> ARM -> TOOL -> MANUFACTURER, builds an access support
// relation over the linear path Arm.MountedTool.ManufacturedBy.Location and
// answers Query 1:
//
//   select r.Name from r in OurRobots
//   where  r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "gom/object_store.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "workload/meter.h"

using namespace asr;

int main() {
  // --- Schema ---------------------------------------------------------------
  gom::Schema schema;
  using S = gom::Schema;
  TypeId manufacturer =
      schema
          .DefineTupleType("MANUFACTURER", {},
                           {{"Name", S::kStringType, kInvalidTypeId},
                            {"Location", S::kStringType, kInvalidTypeId}})
          .value();
  TypeId tool =
      schema
          .DefineTupleType("TOOL", {},
                           {{"Function", S::kStringType, kInvalidTypeId},
                            {"ManufacturedBy", manufacturer, kInvalidTypeId}})
          .value();
  TypeId arm =
      schema
          .DefineTupleType("ARM", {},
                           {{"Kinematics", S::kStringType, kInvalidTypeId},
                            {"MountedTool", tool, kInvalidTypeId}})
          .value();
  TypeId robot =
      schema
          .DefineTupleType("ROBOT", {},
                           {{"Name", S::kStringType, kInvalidTypeId},
                            {"Arm", arm, kInvalidTypeId}})
          .value();

  // --- Object base (Figure 1) ------------------------------------------------
  storage::Disk disk;
  storage::BufferManager buffers(&disk, /*capacity=*/0);
  gom::ObjectStore store(&schema, &buffers);

  Oid robclone = store.CreateObject(manufacturer).value();
  store.SetString(robclone, "Name", "RobClone").ok();
  store.SetString(robclone, "Location", "Utopia").ok();

  auto make_tool = [&](const char* function, Oid maker) {
    Oid t = store.CreateObject(tool).value();
    ASR_CHECK(store.SetString(t, "Function", function).ok());
    if (!maker.IsNull()) {
      ASR_CHECK(store.SetRef(t, "ManufacturedBy", maker).ok());
    }
    return t;
  };
  auto make_robot = [&](const char* name, Oid mounted) {
    Oid r = store.CreateObject(robot).value();
    ASR_CHECK(store.SetString(r, "Name", name).ok());
    Oid a = store.CreateObject(arm).value();
    ASR_CHECK(store.SetString(a, "Kinematics", "revolute-6dof").ok());
    ASR_CHECK(store.SetRef(a, "MountedTool", mounted).ok());
    ASR_CHECK(store.SetRef(r, "Arm", a).ok());
    return r;
  };

  Oid welding = make_tool("welding", robclone);
  Oid gripping = make_tool("gripping", robclone);
  Oid orphan_tool = make_tool("gripping", Oid::Null());  // no manufacturer

  make_robot("R2D2", welding);
  make_robot("X4D5", gripping);
  make_robot("Robi", orphan_tool);

  // --- Access support relation over the path --------------------------------
  PathExpression path =
      PathExpression::Parse(schema, robot,
                            "Arm.MountedTool.ManufacturedBy.Location")
          .value();
  std::printf("path expression: %s  (n=%u, linear)\n",
              path.ToString().c_str(), path.n());

  auto asr = AccessSupportRelation::Build(&store, path,
                                          ExtensionKind::kCanonical,
                                          Decomposition::None(path.n()))
                 .value();

  // --- Query 1 ---------------------------------------------------------------
  AsrKey utopia = AsrKey::FromString("Utopia", store.string_dict());

  storage::AccessStats supported_cost = workload::Meter(&disk, [&] {
    for (AsrKey r : asr->EvalBackward(utopia, 0, path.n()).value()) {
      std::printf("robot using a tool manufactured in Utopia: %s\n",
                  store.GetString(r.ToOid(), "Name")->c_str());
    }
  });

  // The same query evaluated navigationally (uni-directional references
  // force an exhaustive search).
  QueryEvaluator nav(&store, &path);
  storage::AccessStats nav_cost = workload::Meter(&disk, [&] {
    auto robots = nav.BackwardNoSupport(utopia, 0, path.n()).value();
    std::printf("navigational evaluation found %zu robots\n", robots.size());
  });

  std::printf("page accesses — supported: %llu, navigational: %llu\n",
              static_cast<unsigned long long>(supported_cost.total()),
              static_cast<unsigned long long>(nav_cost.total()));
  return 0;
}
