// Live index maintenance example (§6): an access support relation kept
// consistent under object-base updates via incremental maintenance, with
// page-access metering per update.
//
// The scenario follows the paper's ins_i operation: products gain and lose
// base parts while a left-complete ASR over
// Division.Manufactures.Composition.Name stays query-consistent.
#include <cstdio>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

using namespace asr;

int main() {
  // A small synthetic object base: 3-level path with set-valued hops.
  cost::ApplicationProfile profile;
  profile.n = 3;
  profile.c = {50, 120, 300, 200};
  profile.d = {40, 100, 240};
  profile.fan = {2, 2, 3};
  profile.size = {200, 200, 200, 120};

  auto base = workload::SyntheticBase::Generate(profile, {7, 0}).value();
  gom::ObjectStore* store = base->store();
  const PathExpression& path = base->path();

  auto asr = AccessSupportRelation::Build(store, path,
                                          ExtensionKind::kLeftComplete,
                                          Decomposition::Binary(path.n()))
                 .value();
  QueryEvaluator nav(store, &path);

  std::printf("%s\n", asr->Describe().c_str());

  const PathStep& last_step = path.step(3);
  int performed = 0;
  for (size_t i = 0; i < base->objects_at(2).size() && performed < 8; i += 9) {
    Oid u = base->objects_at(2)[i];
    Oid w = base->objects_at(3)[(7 * i + 3) % base->objects_at(3).size()];
    AsrKey set_key = store->GetAttributeByName(u, last_step.attr_name).value();
    if (set_key.IsNull()) continue;
    Oid set_oid = set_key.ToOid();
    bool member = store->SetContains(set_oid, AsrKey::FromOid(w)).value();

    storage::AccessStats cost = workload::Meter(base->disk(), [&] {
      if (member) {
        ASR_CHECK(store->RemoveFromSet(set_oid, AsrKey::FromOid(w)).ok());
        ASR_CHECK(asr->OnEdgeRemoved(u, 2, AsrKey::FromOid(w)).ok());
      } else {
        ASR_CHECK(store->AddToSet(set_oid, AsrKey::FromOid(w)).ok());
        ASR_CHECK(asr->OnEdgeInserted(u, 2, AsrKey::FromOid(w)).ok());
      }
    });
    std::printf("%s edge (%s -> %s): %llu page accesses\n",
                member ? "removed " : "inserted", u.ToString().c_str(),
                w.ToString().c_str(),
                static_cast<unsigned long long>(cost.total()));
    ++performed;

    // The maintained index must agree with navigational evaluation.
    AsrKey target = AsrKey::FromOid(w);
    auto via_asr = asr->EvalBackward(target, 0, 3).value();
    auto via_nav = nav.BackwardNoSupport(target, 0, 3).value();
    ASR_CHECK(via_asr.size() == via_nav.size());
  }

  std::printf(
      "\nall %d updates kept the access support relation consistent with "
      "the object base\n",
      performed);
  return 0;
}
