// EXPLAIN: per-stage traces of supported and navigational path queries.
//
// Generates a small synthetic base over a 3-step path, materializes an ASR
// decomposed as [0,2][2,3], and runs the same forward and backward queries
// through QueryEvaluator::Explain — once over the ASR, once navigationally.
// Each trace is printed as an indented span tree (stage, partition, mode,
// frontier size, page reads/writes, buffer hits/misses, wall time) and as
// JSON; the page counts per span are the same secondary-storage unit the
// analytical model predicts.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/explain
#include <cstdio>

#include "asr/access_support_relation.h"
#include "asr/decomposition.h"
#include "asr/query.h"
#include "cost/profile.h"
#include "obs/metrics.h"
#include "workload/synthetic_base.h"

using namespace asr;

int main() {
  // Small three-step path: 60 objects per level, fan-out 2.
  cost::ApplicationProfile profile;
  profile.n = 3;
  profile.c = {60, 60, 60, 60};
  profile.d = {50, 50, 50};
  profile.fan = {2, 2, 2};
  ASR_CHECK(profile.Validate().ok());

  auto base = workload::SyntheticBase::Generate(profile).value();
  const PathExpression& path = base->path();

  // Decomposition [0,2][2,3]: Q_{0,3} hops through two partitions; entry at
  // the interior column 1 would force a partition scan (Eq. 33).
  Decomposition decomp = Decomposition::Of({0, 2, 3}, path.n()).value();
  auto asr = AccessSupportRelation::Build(base->store(), path,
                                          ExtensionKind::kFull, decomp)
                 .value();

  AsrKey start = AsrKey::FromOid(base->objects_at(0).front());
  QueryEvaluator eval(base->store(), &path);

  // --- Q_{0,3}(fw), supported ----------------------------------------------
  ExplainResult fwd =
      eval.Explain(QueryDir::kForward, start, 0, path.n(), asr.get()).value();
  std::printf("=== forward, supported (%zu results) ===\n%s\n",
              fwd.keys.size(), fwd.trace.ToText().c_str());

  // Pick a reachable terminal value so the backward queries have hits.
  ASR_CHECK(!fwd.keys.empty());
  AsrKey target = fwd.keys.front();

  // --- Q_{0,3}(bw), supported ----------------------------------------------
  ExplainResult bwd =
      eval.Explain(QueryDir::kBackward, target, 0, path.n(), asr.get())
          .value();
  std::printf("=== backward, supported (%zu results) ===\n%s\n",
              bwd.keys.size(), bwd.trace.ToText().c_str());

  // --- The same queries without access support -----------------------------
  ExplainResult nav_fwd =
      eval.Explain(QueryDir::kForward, start, 0, path.n()).value();
  std::printf("=== forward, navigational (%zu results) ===\n%s\n",
              nav_fwd.keys.size(), nav_fwd.trace.ToText().c_str());

  ExplainResult nav_bwd =
      eval.Explain(QueryDir::kBackward, target, 0, path.n()).value();
  std::printf("=== backward, navigational (%zu results) ===\n%s\n",
              nav_bwd.keys.size(), nav_bwd.trace.ToText().c_str());

  // --- One trace as JSON, plus the metrics registry ------------------------
  std::printf("=== backward, supported, as JSON ===\n%s\n",
              bwd.trace.ToJson().c_str());

  obs::MetricsRegistry registry;
  base->disk()->ExportMetrics(&registry, "disk");
  base->buffers()->ExportMetrics(&registry, "buffers");
  asr->ExportMetrics(&registry, "asr");
  eval.ExportMetrics(&registry, "query");
  std::printf("=== metrics registry ===\n%s", registry.ToText().c_str());
  return 0;
}
