// Self-tuning example — the loop the paper's conclusion proposes (§7):
// "for a recorded database usage pattern the system could (semi-)
// automatically adjust the physical database design."
//
// A synthetic engineering base runs a workload while a UsageRecorder logs
// every operation; the AutoTuner then measures the base's actual statistics
// (profile estimation), feeds the recorded mix into the cost model, ranks
// the whole design space, and materializes the winning access support
// relation — which immediately serves the same workload far cheaper.
#include <cstdio>

#include "advisor/auto_tuner.h"
#include "workload/meter.h"
#include "workload/mix_driver.h"
#include "workload/synthetic_base.h"

using namespace asr;

int main() {
  // The object base: a 4-level engineering path at moderate scale.
  cost::ApplicationProfile profile;
  profile.n = 4;
  profile.c = {100, 500, 1000, 5000, 10000};
  profile.d = {90, 400, 800, 2000};
  profile.fan = {2, 2, 3, 4};
  profile.size = {500, 400, 300, 300, 100};
  auto base = workload::SyntheticBase::Generate(profile, {123, 0}).value();
  std::printf("object base: %s over %zu objects\n",
              base->path().ToString().c_str(),
              static_cast<size_t>(profile.c[0] + profile.c[1] + profile.c[2] +
                                  profile.c[3] + profile.c[4]));

  // Phase 1: run the application WITHOUT access support, recording usage.
  cost::OperationMix observed_mix;
  observed_mix.queries = {{0.6, cost::QueryDirection::kBackward, 0, 4},
                          {0.4, cost::QueryDirection::kBackward, 0, 3}};
  observed_mix.updates = {{1.0, 3}};
  const double p_up = 0.1;
  const uint64_t kOps = 40;

  workload::UsageRecorder recorder;
  workload::MixDriver untuned(base.get(), nullptr, 7);
  workload::MixRunResult before = untuned.Run(observed_mix, p_up, kOps).value();
  // Log what actually ran (here: replay the mix into the recorder with the
  // realized counts).
  for (uint64_t q = 0; q < before.queries; ++q) {
    recorder.RecordQuery(cost::QueryDirection::kBackward,
                         0, q % 5 < 3 ? 4 : 3);
  }
  for (uint64_t u = 0; u < before.updates; ++u) recorder.RecordUpdate(3);
  std::printf("phase 1 (no support): %.1f page accesses/operation over %llu "
              "ops (%.0f%% updates)\n",
              before.PerOperation(),
              static_cast<unsigned long long>(before.operations),
              recorder.UpdateProbability() * 100);

  // Phase 2: tune. The tuner measures the base, converts the recorded
  // history into an operation mix, and ranks every extension x
  // decomposition.
  advisor::TuningResult tuned =
      advisor::AutoTuner::Tune(base->store(), base->path(), recorder)
          .value();
  std::printf("measured profile: c=(%.0f,%.0f,%.0f,%.0f,%.0f) "
              "d=(%.0f,%.0f,%.0f,%.0f)\n",
              tuned.measured_profile.c[0], tuned.measured_profile.c[1],
              tuned.measured_profile.c[2], tuned.measured_profile.c[3],
              tuned.measured_profile.c[4], tuned.measured_profile.d[0],
              tuned.measured_profile.d[1], tuned.measured_profile.d[2],
              tuned.measured_profile.d[3]);
  std::printf("chosen design: %s\n", tuned.chosen.ToString().c_str());

  // Phase 3: the same workload through the materialized design.
  ASR_CHECK(base->buffers()->FlushAll().ok());
  base->disk()->ResetStats();
  workload::MixDriver tuned_driver(base.get(), tuned.asr.get(), 7);
  workload::MixRunResult after =
      tuned_driver.Run(observed_mix, p_up, kOps).value();
  std::printf("phase 3 (tuned):      %.1f page accesses/operation\n",
              after.PerOperation());
  std::printf("speedup: %.1fx\n",
              before.PerOperation() / after.PerOperation());
  return 0;
}
