#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace asrlint {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;
};

struct SourceFile {
  std::string path;
  std::vector<Token> toks;
  // line -> concatenated comment text on that line (block comments contribute
  // to every line they span). Drives suppression lookup.
  std::map<int, std::string> comments;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Tokenizes C++ source: strips comments (recording their text per line),
// string/char literals, and whole preprocessor lines (so macro *definitions*
// are never mistaken for uses). Only `::` and `->` survive as multi-char
// punctuators; the rules below never need the rest.
void Lex(const std::string& text, SourceFile* out) {
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  bool line_start = true;  // nothing but whitespace so far on this line

  auto add_comment = [&](int at, const std::string& body) {
    std::string& slot = out->comments[at];
    if (!slot.empty()) slot += ' ';
    slot += body;
  };

  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      size_t start = i + 2;
      while (i < n && text[i] != '\n') ++i;
      add_comment(line, text.substr(start, i - start));
      continue;
    }
    // Block comment: contributes its text to every line it spans.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      size_t seg = i;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          add_comment(line, text.substr(seg, i - seg));
          ++line;
          seg = i + 1;
        }
        ++i;
      }
      add_comment(line, text.substr(seg, i - seg));
      i = i + 1 < n ? i + 2 : n;
      continue;
    }
    // Preprocessor line: skip entirely, honoring backslash continuations.
    // Macro bodies (e.g. the ASR_GUARDED_BY definition itself, or the
    // ((void)0) arm of ASR_EVENT) must not feed the rules.
    if (c == '#' && line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    line_start = false;
    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      size_t d = i + 2;
      while (d < n && text[d] != '(') ++d;
      std::string close = ")" + text.substr(i + 2, d - (i + 2)) + "\"";
      size_t end = text.find(close, d);
      end = end == std::string::npos ? n : end + close.size();
      for (size_t k = i; k < end; ++k) {
        if (text[k] == '\n') ++line;
      }
      i = end;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) ++i;
        if (text[i] == '\n') ++line;  // unterminated; stay sane
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(text[i])) ++i;
      out->toks.push_back({text.substr(start, i - start), line, true});
      continue;
    }
    // Number (pp-number: digits, idents, dots, sign after exponent char).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      ++i;
      while (i < n) {
        char p = text[i];
        if (IsIdentChar(p) || p == '.' || p == '\'') {
          ++i;
        } else if ((p == '+' || p == '-') &&
                   (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                    text[i - 1] == 'p' || text[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out->toks.push_back({text.substr(start, i - start), line, false});
      continue;
    }
    // Punctuation: keep :: and -> whole.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out->toks.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out->toks.push_back({"->", line, false});
      i += 2;
      continue;
    }
    out->toks.push_back({std::string(1, c), line, false});
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Structural pass: classes, annotated fields, function bodies
// ---------------------------------------------------------------------------

struct FunctionRec {
  const SourceFile* src = nullptr;
  std::string cls;   // innermost class (scope or out-of-line qualifier), or ""
  std::string name;  // "" when unknown (e.g. operator with odd spelling)
  bool ctor_dtor = false;
  size_t body_begin = 0;  // index of '{'
  size_t body_end = 0;    // index of matching '}'
  std::set<std::string> requires_mutexes;  // ASR_REQUIRES on the definition
};

struct ParseResult {
  // class -> field -> mutex that guards it.
  std::map<std::string, std::map<std::string, std::string>> guarded;
  // "Class::method" -> mutexes from ASR_REQUIRES on a *declaration*.
  std::map<std::string, std::set<std::string>> requires_decl;
  std::vector<FunctionRec> functions;
};

const std::set<std::string>& AnnotationMacros() {
  static const std::set<std::string> kSet = {
      "ASR_GUARDED_BY", "ASR_PT_GUARDED_BY", "ASR_REQUIRES", "ASR_EXCLUDES",
      "ASR_DISALLOW_COPY_AND_ASSIGN"};
  return kSet;
}

bool IsControlKeyword(const std::string& t) {
  static const std::set<std::string> kSet = {
      "if", "while", "for", "switch", "catch", "return", "sizeof",
      "alignof", "alignas", "decltype", "static_assert", "new", "delete",
      "throw", "case", "do", "else"};
  return kSet.count(t) > 0;
}

class Parser {
 public:
  Parser(const SourceFile& src, ParseResult* out) : src_(src), out_(out) {}

  void Parse() { ParseScope(/*in_class=*/false, ""); }

 private:
  const SourceFile& src_;
  ParseResult* out_;
  size_t i_ = 0;

  const std::string& Text(size_t k) const {
    static const std::string kEmpty;
    return k < src_.toks.size() ? src_.toks[k].text : kEmpty;
  }
  bool Ident(size_t k) const {
    return k < src_.toks.size() && src_.toks[k].ident;
  }
  bool AtEnd() const { return i_ >= src_.toks.size(); }

  // Advances past a balanced pair starting at the opener `open` (i_ points at
  // it); tolerant of EOF.
  void SkipBalanced(const std::string& open, const std::string& close) {
    int depth = 0;
    while (!AtEnd()) {
      if (Text(i_) == open) ++depth;
      if (Text(i_) == close && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  void SkipTemplateHeader() {
    ++i_;  // "template"
    if (Text(i_) != "<") return;
    int depth = 0;
    while (!AtEnd()) {
      if (Text(i_) == "<") ++depth;
      if (Text(i_) == ">" && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  void SkipToSemicolon() {
    int paren = 0, brace = 0;
    while (!AtEnd()) {
      const std::string& t = Text(i_);
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if (t == "{") ++brace;
      if (t == "}") {
        if (brace == 0) return;  // scope closer; leave it to the caller
        --brace;
      }
      if (t == ";" && paren == 0 && brace == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  void ParseEnum() {
    ++i_;  // "enum"
    if (Text(i_) == "class" || Text(i_) == "struct") ++i_;
    if (Ident(i_)) ++i_;
    while (!AtEnd() && Text(i_) != "{" && Text(i_) != ";") ++i_;
    if (Text(i_) == "{") SkipBalanced("{", "}");
    if (Text(i_) == ";") ++i_;
  }

  void ParseClassHead() {
    ++i_;  // "class" / "struct" / "union"
    std::string name;
    int paren = 0;
    while (!AtEnd()) {
      const std::string& t = Text(i_);
      if (t == "(") ++paren;  // alignas(...) etc.
      if (t == ")") --paren;
      if (paren == 0) {
        if (t == ";") {  // forward declaration
          ++i_;
          return;
        }
        if (t == "{") break;
        if (t == ":") {  // base clause: scan on to the body
          while (!AtEnd() && Text(i_) != "{" && Text(i_) != ";") ++i_;
          break;
        }
        if (Ident(i_) && t != "final" && t != "alignas") name = t;
      }
      ++i_;
    }
    if (Text(i_) != "{") {
      if (Text(i_) == ";") ++i_;
      return;
    }
    ++i_;  // '{'
    ParseScope(/*in_class=*/true, name);
    if (Text(i_) == ";") ++i_;
  }

  void ParseNamespace() {
    ++i_;  // "namespace"
    while (!AtEnd() && Text(i_) != "{" && Text(i_) != ";" && Text(i_) != "=") {
      ++i_;  // name / :: / inline
    }
    if (Text(i_) == "{") {
      ++i_;
      ParseScope(/*in_class=*/false, "");
      return;
    }
    SkipToSemicolon();  // alias or ;
  }

  void ParseScope(bool in_class, const std::string& class_name) {
    while (!AtEnd()) {
      const std::string& t = Text(i_);
      if (t == "}") {
        ++i_;
        return;
      }
      if (t == ";") {
        ++i_;
        continue;
      }
      if (t == "template") {
        SkipTemplateHeader();
        continue;
      }
      if (t == "namespace" && !in_class) {
        ParseNamespace();
        continue;
      }
      if (t == "class" || t == "struct" || t == "union") {
        ParseClassHead();
        continue;
      }
      if (t == "enum") {
        ParseEnum();
        continue;
      }
      if ((t == "public" || t == "private" || t == "protected") &&
          Text(i_ + 1) == ":") {
        i_ += 2;
        continue;
      }
      if (t == "using" || t == "typedef" || t == "friend" ||
          t == "static_assert" || t == "extern") {
        SkipToSemicolon();
        continue;
      }
      ParseDeclaration(in_class, class_name);
    }
  }

  // One declaration at namespace/class scope: a field, a prototype, or a
  // function definition (whose body is recorded as a raw token range).
  void ParseDeclaration(bool in_class, const std::string& class_name) {
    int paren = 0;
    bool saw_eq = false;           // top-level '=': an initializer follows
    bool saw_init_colon = false;   // ctor-init-list ':' after the param list
    size_t group_name_idx = static_cast<size_t>(-1);  // ident before '('
    bool pending_operator = false;
    std::set<std::string> requires_here;
    // field name -> mutex, from ASR_GUARDED_BY on this declaration.
    std::map<std::string, std::string> guarded_here;

    auto macro_args_last_idents = [&](size_t open) {
      // For ASR_REQUIRES(a, b.mu_): the last identifier of each top-level
      // comma-separated argument.
      std::set<std::string> names;
      size_t k = open + 1;
      int depth = 1;
      std::string last;
      while (k < src_.toks.size() && depth > 0) {
        const std::string& a = Text(k);
        if (a == "(") ++depth;
        if (a == ")") {
          --depth;
          if (depth == 0) break;
        }
        if (a == "," && depth == 1) {
          if (!last.empty()) names.insert(last);
          last.clear();
        } else if (Ident(k)) {
          last = a;
        }
        ++k;
      }
      if (!last.empty()) names.insert(last);
      return names;
    };

    while (!AtEnd()) {
      const std::string& t = Text(i_);
      if (t == "}" && paren == 0) return;  // scope closer; stray
      if (t == "template") {
        SkipTemplateHeader();
        continue;
      }
      if (t == "operator" && paren == 0) {
        pending_operator = true;
        group_name_idx = i_;  // a function for sure; name = "operator"
        ++i_;
        // operator()() : the symbol pair comes before the param list.
        if (Text(i_) == "(" && Text(i_ + 1) == ")") i_ += 2;
        while (!AtEnd() && !Ident(i_) && Text(i_) != "(" && Text(i_) != ";") {
          ++i_;  // the operator symbol tokens (<, ==, [], ...)
        }
        continue;
      }
      if (t == "ASR_GUARDED_BY" || t == "ASR_PT_GUARDED_BY") {
        std::string field = i_ > 0 && Ident(i_ - 1) ? Text(i_ - 1) : "";
        if (Text(i_ + 1) == "(") {
          std::set<std::string> names = macro_args_last_idents(i_ + 1);
          if (!field.empty() && !names.empty()) {
            guarded_here[field] = *names.begin();
          }
          ++i_;
          SkipBalanced("(", ")");
        } else {
          ++i_;
        }
        continue;
      }
      if (t == "ASR_REQUIRES" || t == "ASR_EXCLUDES") {
        if (Text(i_ + 1) == "(") {
          if (t == "ASR_REQUIRES") {
            std::set<std::string> names = macro_args_last_idents(i_ + 1);
            requires_here.insert(names.begin(), names.end());
          }
          ++i_;
          SkipBalanced("(", ")");
        } else {
          ++i_;
        }
        continue;
      }
      if (t == "(") {
        if (paren == 0 && group_name_idx == static_cast<size_t>(-1) &&
            !saw_eq) {
          // Candidate parameter list: the token before must be a plausible
          // function name (or we are right after `operator`).
          if (pending_operator) {
            // group already attributed to the operator
          } else if (i_ > 0 && Ident(i_ - 1) && !IsControlKeyword(Text(i_ - 1)) &&
                     AnnotationMacros().count(Text(i_ - 1)) == 0) {
            group_name_idx = i_ - 1;
          }
          if (pending_operator || group_name_idx == i_ - 1 ||
              group_name_idx != static_cast<size_t>(-1)) {
            pending_operator = false;
          }
        }
        ++paren;
        ++i_;
        continue;
      }
      if (t == ")") {
        --paren;
        ++i_;
        continue;
      }
      if (paren > 0) {
        ++i_;
        continue;
      }
      if (t == "=") {
        saw_eq = true;
        ++i_;
        continue;
      }
      if (t == ":" && group_name_idx != static_cast<size_t>(-1)) {
        saw_init_colon = true;
        ++i_;
        continue;
      }
      if (t == ";") {
        ++i_;
        FinishPrototype(in_class, class_name, group_name_idx, requires_here,
                        guarded_here);
        return;
      }
      if (t == "{") {
        bool is_body = false;
        if (group_name_idx != static_cast<size_t>(-1) && !saw_eq) {
          const std::string& prev = i_ > 0 ? Text(i_ - 1) : std::string();
          if (prev == ")" || prev == "}" || prev == "const" ||
              prev == "noexcept" || prev == "override" || prev == "final" ||
              prev == "mutable" || prev == "&" || prev == "try") {
            is_body = true;
          } else if (Ident(i_ - 1)) {
            // `-> Type {` trailing return vs `field_{init}` in a ctor
            // init list: only the latter follows a top-level ':'.
            is_body = !saw_init_colon;
          }
        }
        if (!is_body) {
          SkipBalanced("{", "}");
          continue;  // e.g. a brace initializer; keep scanning for ';'
        }
        RecordFunction(in_class, class_name, group_name_idx, requires_here);
        return;
      }
      ++i_;
    }
  }

  void FinishPrototype(bool in_class, const std::string& class_name,
                       size_t name_idx, const std::set<std::string>& req,
                       const std::map<std::string, std::string>& guarded) {
    for (const auto& [field, mutex] : guarded) {
      if (in_class) out_->guarded[class_name][field] = mutex;
    }
    if (!req.empty() && name_idx != static_cast<size_t>(-1)) {
      std::string cls = in_class ? class_name : QualifierBefore(name_idx);
      out_->requires_decl[cls + "::" + Text(name_idx)].insert(req.begin(),
                                                              req.end());
    }
  }

  std::string QualifierBefore(size_t name_idx) const {
    // Foo::Bar::name -> "Bar"; ~ belongs to the name, not the qualifier.
    size_t k = name_idx;
    if (k > 0 && Text(k - 1) == "~") --k;
    if (k >= 2 && Text(k - 1) == "::" && Ident(k - 2)) return Text(k - 2);
    return "";
  }

  void RecordFunction(bool in_class, const std::string& class_name,
                      size_t name_idx, const std::set<std::string>& req) {
    FunctionRec fn;
    fn.src = &src_;
    fn.name = Text(name_idx);
    fn.requires_mutexes = req;
    fn.cls = in_class ? class_name : QualifierBefore(name_idx);
    const bool dtor = name_idx > 0 && Text(name_idx - 1) == "~";
    fn.ctor_dtor = dtor || (!fn.cls.empty() && fn.name == fn.cls);
    fn.body_begin = i_;
    int depth = 0;
    while (!AtEnd()) {
      if (Text(i_) == "{") ++depth;
      if (Text(i_) == "}" && --depth == 0) break;
      ++i_;
    }
    fn.body_end = i_;
    if (!AtEnd()) ++i_;
    out_->functions.push_back(std::move(fn));
  }
};

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

bool PathMatchesAny(const std::string& path,
                    const std::vector<std::string>& fragments) {
  for (const std::string& f : fragments) {
    if (path.find(f) != std::string::npos) return true;
  }
  return false;
}

// True when the token at `k` is a *call* of a POSIX-style function: followed
// by '(', not a member call (`.`/`->`), and if qualified, only `::f` or
// `std::f` count (Class::Open etc. do not).
bool IsPosixCall(const SourceFile& src, size_t k) {
  if (k + 1 >= src.toks.size() || src.toks[k + 1].text != "(") return false;
  if (k == 0) return true;
  const std::string& prev = src.toks[k - 1].text;
  if (prev == "." || prev == "->" || prev == "~") return false;
  if (prev == "::") {
    // SomeClass::open is not the libc symbol, but `return ::rename(...)` is:
    // a keyword before the `::` is not a qualifier.
    if (k >= 2 && src.toks[k - 2].ident && src.toks[k - 2].text != "std" &&
        !IsControlKeyword(src.toks[k - 2].text)) {
      return false;
    }
  }
  return true;
}

const std::set<std::string>& SeamBannedCalls() {
  static const std::set<std::string> kSet = {
      "open",  "openat",   "pread", "pwrite",    "fsync", "fdatasync",
      "mmap",  "munmap",   "ftruncate", "rename", "renameat"};
  return kSet;
}

const std::set<std::string>& ClockTokens() {
  static const std::set<std::string> kSet = {
      "steady_clock",  "system_clock", "high_resolution_clock",
      "clock_gettime", "gettimeofday", "MonotonicMicros",
      "rdtsc",         "__rdtsc",      "_rdtsc"};
  return kSet;
}

const std::set<std::string>& FsyncTokens() {
  static const std::set<std::string> kSet = {"fsync", "fdatasync", "Fsync",
                                             "Fdatasync", "FsyncPath"};
  return kSet;
}

const std::set<std::string>& LockConstructs() {
  // TxnCommitLock / SnapshotReadLock are the storage/mvcc.h handle aliases
  // (exclusive and shared sides of the version-table mutex).
  static const std::set<std::string> kSet = {
      "lock_guard",    "unique_lock",  "shared_lock",
      "scoped_lock",   "TxnCommitLock", "SnapshotReadLock"};
  return kSet;
}

// Mutexes this function body demonstrably locks: identifiers appearing in the
// constructor arguments of a lock_guard/unique_lock/shared_lock/scoped_lock,
// plus `m` for any direct `m.lock()` call. Flow-insensitive on purpose.
std::set<std::string> LockedMutexes(const SourceFile& src, size_t begin,
                                    size_t end) {
  std::set<std::string> locked;
  for (size_t k = begin; k <= end && k < src.toks.size(); ++k) {
    const std::string& t = src.toks[k].text;
    if (src.toks[k].ident && LockConstructs().count(t) > 0) {
      size_t j = k + 1;
      if (src.toks[j].text == "<") {  // template argument list
        int depth = 0;
        while (j < src.toks.size()) {
          if (src.toks[j].text == "<") ++depth;
          if (src.toks[j].text == ">" && --depth == 0) {
            ++j;
            break;
          }
          ++j;
        }
      }
      if (j < src.toks.size() && src.toks[j].ident) ++j;  // variable name
      const std::string open = src.toks[j].text;
      if (open == "(" || open == "{") {
        const std::string close = open == "(" ? ")" : "}";
        int depth = 0;
        while (j < src.toks.size()) {
          if (src.toks[j].text == open) ++depth;
          if (src.toks[j].text == close && --depth == 0) break;
          if (src.toks[j].ident) locked.insert(src.toks[j].text);
          ++j;
        }
      }
    }
    if (t == "lock" && k >= 2 && src.toks[k - 1].text == "." &&
        src.toks[k - 2].ident && src.toks[k + 1].text == "(") {
      locked.insert(src.toks[k - 2].text);
    }
  }
  return locked;
}

}  // namespace

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

struct Analyzer::Impl {
  Policy policy;
  std::vector<std::unique_ptr<SourceFile>> files;
  std::vector<Diagnostic> diags;

  // A suppression counts on the diagnostic's own line or anywhere in the
  // contiguous run of comment-bearing lines directly above it (annotations
  // are usually multi-line sentences).
  bool Suppressed(const SourceFile& src, int line, const std::string& rule,
                  bool accept_justified = false) const {
    const std::string allow = "asrlint:allow(" + rule + ")";
    auto matches = [&](int l) {
      auto it = src.comments.find(l);
      if (it == src.comments.end()) return false;
      if (it->second.find(allow) != std::string::npos) return true;
      return accept_justified &&
             it->second.find("justified:") != std::string::npos;
    };
    if (matches(line)) return true;
    for (int l = line - 1; l >= 1 && src.comments.count(l) > 0; --l) {
      if (matches(l)) return true;
    }
    return false;
  }

  void Report(const SourceFile& src, int line, const std::string& rule,
              std::string message, bool accept_justified = false) {
    if (Suppressed(src, line, rule, accept_justified)) return;
    diags.push_back({rule, src.path, line, std::move(message)});
  }

  void CheckLockDiscipline(const ParseResult& pr) {
    for (const FunctionRec& fn : pr.functions) {
      if (fn.cls.empty() || fn.ctor_dtor) continue;
      auto cls_it = pr.guarded.find(fn.cls);
      if (cls_it == pr.guarded.end()) continue;
      const auto& fields = cls_it->second;

      std::set<std::string> held =
          LockedMutexes(*fn.src, fn.body_begin, fn.body_end);
      held.insert(fn.requires_mutexes.begin(), fn.requires_mutexes.end());
      auto req_it = pr.requires_decl.find(fn.cls + "::" + fn.name);
      if (req_it != pr.requires_decl.end()) {
        held.insert(req_it->second.begin(), req_it->second.end());
      }

      std::set<std::string> reported;  // one diagnostic per field per function
      for (size_t k = fn.body_begin; k <= fn.body_end; ++k) {
        const Token& t = fn.src->toks[k];
        if (!t.ident) continue;
        auto f = fields.find(t.text);
        if (f == fields.end() || held.count(f->second) > 0) continue;
        if (reported.count(t.text) > 0) continue;
        reported.insert(t.text);
        Report(*fn.src, t.line, "lock-discipline",
               fn.cls + "::" + fn.name + " accesses '" + t.text +
                   "' (ASR_GUARDED_BY(" + f->second + ")) without locking " +
                   f->second + " or declaring ASR_REQUIRES(" + f->second +
                   ")");
      }
    }
  }

  void CheckSeamPurity(const SourceFile& src) {
    if (PathMatchesAny(src.path, policy.seam_allowed)) return;
    for (size_t k = 0; k < src.toks.size(); ++k) {
      const Token& t = src.toks[k];
      if (!t.ident || SeamBannedCalls().count(t.text) == 0) continue;
      if (!IsPosixCall(src, k)) continue;
      Report(src, t.line, "seam-purity",
             "raw POSIX I/O '" + t.text +
                 "' outside the storage seam; route through storage/io_retry "
                 "or the StorageBackend interface");
    }
  }

  void CheckMeteringPurity(const SourceFile& src) {
    if (!PathMatchesAny(src.path, policy.metering_paths)) return;
    for (const Token& t : src.toks) {
      if (!t.ident || ClockTokens().count(t.text) == 0) continue;
      Report(src, t.line, "metering-purity",
             "metering-path file reads the clock ('" + t.text +
                 "'); timing belongs behind obs::LatencyTimer at the "
                 "gated seam sites only");
    }
  }

  void CheckStatusDiscipline(const SourceFile& src) {
    for (size_t k = 0; k + 2 < src.toks.size(); ++k) {
      if (src.toks[k].text != "(" || src.toks[k + 1].text != "void" ||
          src.toks[k + 2].text != ")") {
        continue;
      }
      // A discarded *call*: (void) ident[::./->ident]* '(' — a plain
      // `(void)param;` silencer is legal.
      size_t j = k + 3;
      bool saw_ident = false;
      while (j < src.toks.size()) {
        const std::string& t = src.toks[j].text;
        if (src.toks[j].ident && !IsControlKeyword(t)) {
          saw_ident = true;
          ++j;
        } else if (t == "::" || t == "." || t == "->" || t == "*" ||
                   t == "~") {
          ++j;
        } else {
          break;
        }
      }
      if (!saw_ident || j >= src.toks.size() || src.toks[j].text != "(") {
        continue;
      }
      Report(src, src.toks[k].line, "status-discipline",
             "(void)-discarded call result; add a '// justified: <reason>' "
             "comment or handle the Status",
             /*accept_justified=*/true);
    }
  }

  void CheckDurabilityOrder(const ParseResult& pr) {
    for (const FunctionRec& fn : pr.functions) {
      const SourceFile& src = *fn.src;
      bool fsynced = false;
      for (size_t k = fn.body_begin; k <= fn.body_end && k < src.toks.size();
           ++k) {
        const Token& t = src.toks[k];
        if (!t.ident) continue;
        if (FsyncTokens().count(t.text) > 0) {
          fsynced = true;
          continue;
        }
        if ((t.text == "rename" || t.text == "renameat") &&
            IsPosixCall(src, k) && !fsynced) {
          Report(src, t.line, "durability-order",
                 "rename() publishes a file that was not fsync'd earlier in "
                 "this function; only an fsynced file has atomic contents");
        }
      }
    }
  }
};

Analyzer::Analyzer(Policy policy) : impl_(new Impl) {
  impl_->policy = std::move(policy);
}

Analyzer::~Analyzer() = default;

bool Analyzer::AddFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  AddSource(path, buf.str());
  return true;
}

void Analyzer::AddSource(const std::string& path, std::string content) {
  auto src = std::make_unique<SourceFile>();
  src->path = path;
  Lex(content, src.get());
  impl_->files.push_back(std::move(src));
}

std::vector<Diagnostic> Analyzer::Run() {
  impl_->diags.clear();
  // Annotations are collected globally (fields live in headers, bodies in
  // .cc files), so parse everything before checking anything.
  ParseResult pr;
  for (const auto& src : impl_->files) {
    Parser(*src, &pr).Parse();
  }
  for (const auto& src : impl_->files) {
    impl_->CheckSeamPurity(*src);
    impl_->CheckMeteringPurity(*src);
    impl_->CheckStatusDiscipline(*src);
  }
  impl_->CheckLockDiscipline(pr);
  impl_->CheckDurabilityOrder(pr);
  std::sort(impl_->diags.begin(), impl_->diags.end());
  return impl_->diags;
}

std::vector<std::string> FilesFromCompileCommands(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  size_t pos = 0;
  while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
    pos += 6;
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) ||
            text[pos] == ':')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '"') continue;
    ++pos;
    std::string file;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      file.push_back(text[pos]);
      ++pos;
    }
    out.push_back(std::move(file));
  }
  return out;
}

std::vector<std::string> GlobSources(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const std::string p = it->path().string();
    if (p.size() > 3 && p.compare(p.size() - 3, 3, ".cc") == 0) {
      out.push_back(p);
    } else if (p.size() > 2 && p.compare(p.size() - 2, 2, ".h") == 0) {
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace asrlint
