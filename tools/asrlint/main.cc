// asrlint CLI.
//
//   asrlint [--compile-commands <json>] [--root <dir>] [file...]
//
// The TU list comes from compile_commands.json (filtered to --root when both
// are given); --root additionally contributes headers, which never appear in
// compile commands but hold the annotations and inline method bodies.
// Prints "file:line: [rule] message" per diagnostic; exit 1 if any fired.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace {

std::string Canonical(const std::string& p) {
  std::error_code ec;
  std::filesystem::path c = std::filesystem::weakly_canonical(p, ec);
  return ec ? p : c.string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string compile_commands;
  std::vector<std::string> roots;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compile-commands" && i + 1 < argc) {
      compile_commands = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      roots.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: asrlint [--compile-commands <json>] "
                   "[--root <dir>]... [file...]\n");
      return 2;
    } else {
      explicit_files.push_back(arg);
    }
  }

  // Gather the file set, deduplicated by canonical path.
  std::set<std::string> seen;
  std::vector<std::string> files;
  auto add = [&](const std::string& f) {
    const std::string key = Canonical(f);
    if (seen.insert(key).second) files.push_back(f);
  };

  if (!compile_commands.empty()) {
    std::vector<std::string> canonical_roots;
    canonical_roots.reserve(roots.size());
    for (const std::string& r : roots) canonical_roots.push_back(Canonical(r));
    for (const std::string& f :
         asrlint::FilesFromCompileCommands(compile_commands)) {
      if (!canonical_roots.empty()) {
        const std::string c = Canonical(f);
        bool under = false;
        for (const std::string& r : canonical_roots) {
          if (c.size() > r.size() && c.compare(0, r.size(), r) == 0) {
            under = true;
            break;
          }
        }
        if (!under) continue;
      }
      add(f);
    }
  }
  for (const std::string& r : roots) {
    for (const std::string& f : asrlint::GlobSources(r)) add(f);
  }
  for (const std::string& f : explicit_files) add(f);

  if (files.empty()) {
    std::fprintf(stderr, "asrlint: no input files (see --help)\n");
    return 2;
  }

  asrlint::Analyzer analyzer;
  int unreadable = 0;
  for (const std::string& f : files) {
    if (!analyzer.AddFile(f)) {
      std::fprintf(stderr, "asrlint: cannot read '%s'\n", f.c_str());
      ++unreadable;
    }
  }

  const std::vector<asrlint::Diagnostic> diags = analyzer.Run();
  for (const asrlint::Diagnostic& d : diags) {
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  std::fprintf(stderr, "asrlint: %zu file(s), %zu diagnostic(s)\n",
               files.size() - unreadable, diags.size());
  return (diags.empty() && unreadable == 0) ? 0 : 1;
}
