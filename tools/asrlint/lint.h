// asrlint: in-repo discipline analyzer for the project's own sources.
//
// A compile-command-driven static-analysis pass with no compiler-library
// dependency: a hand-rolled lexer plus a brace/scope tracker recover just
// enough structure (classes, fields, member-function bodies) to enforce the
// project's hand-written disciplines as named, testable rules:
//
//   lock-discipline   fields tagged ASR_GUARDED_BY(m) may only be touched in
//                     methods of their class that lock m (lock_guard /
//                     unique_lock / shared_lock / scoped_lock) or are
//                     declared ASR_REQUIRES(m). Constructors and destructors
//                     are exempt (the object is not yet / no longer shared).
//   seam-purity       raw POSIX I/O (open/pread/pwrite/fsync/fdatasync/
//                     mmap/munmap/ftruncate/rename) may only appear below
//                     the storage seam: file_backend.cc, wal.cc, io_retry.cc.
//   metering-purity   metering-path files (btree/, asr/, storage/disk.cc,
//                     storage/buffer_manager.cc) never read the clock
//                     (steady_clock/system_clock/clock_gettime/gettimeofday/
//                     MonotonicMicros) — the bit-identical-counts contract.
//   status-discipline a (void)-cast call expression (the escape hatch from
//                     [[nodiscard]] Status/Result) must carry a
//                     "// justified:" comment explaining the discard.
//   durability-order  a function that renames a file into place must issue
//                     an fsync/fdatasync earlier in the same function —
//                     rename is atomic in the namespace, but only an fsynced
//                     file has atomic contents.
//
// Any diagnostic can be suppressed on its own line, or anywhere in the
// contiguous comment block directly above it, with
//   // asrlint:allow(<rule>) <reason>
//
// The analyzer is deliberately lexical and flow-insensitive: it trades deep
// soundness for zero dependencies, full-tree speed, and diagnostics stable
// enough to gate CI on. clang-tidy / clang -Wthread-safety remain the
// heavyweight second opinion where clang is installed.
#ifndef ASR_TOOLS_ASRLINT_LINT_H_
#define ASR_TOOLS_ASRLINT_LINT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace asrlint {

struct Diagnostic {
  std::string rule;     // e.g. "lock-discipline"
  std::string file;     // path as given to AddFile/AddSource
  int line = 0;         // 1-based
  std::string message;  // human-readable defect description

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

// Which paths each path-scoped rule applies to. Matching is by substring on
// the path as given (fixtures mirror the src/ layout to opt into a rule).
struct Policy {
  // seam-purity: path fragments allowed to issue raw POSIX I/O.
  std::vector<std::string> seam_allowed = {
      "storage/file_backend.cc",
      "storage/wal.cc",
      "storage/io_retry.cc",
  };
  // metering-purity: path fragments whose files must never read the clock.
  std::vector<std::string> metering_paths = {
      "/btree/",
      "/asr/",
      "storage/disk.cc",
      "storage/buffer_manager.cc",
  };
};

class Analyzer {
 public:
  explicit Analyzer(Policy policy = Policy());
  ~Analyzer();

  // Reads `path` from disk; returns false (and records no source) when the
  // file cannot be read.
  bool AddFile(const std::string& path);
  // Registers in-memory source under `path` (tests; path drives the
  // path-scoped rules).
  void AddSource(const std::string& path, std::string content);

  // Runs every rule over everything added so far. Annotation collection is
  // global (a field annotated in a header is enforced in the .cc), so all
  // sources must be added before the first Run(). Sorted by file/line.
  std::vector<Diagnostic> Run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// The "file" entries of a compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
// ON), in file order. A minimal extractor — it only needs the file list, not
// the flags.
std::vector<std::string> FilesFromCompileCommands(const std::string& path);

// All *.cc / *.h under `root`, recursively, sorted.
std::vector<std::string> GlobSources(const std::string& root);

}  // namespace asrlint

#endif  // ASR_TOOLS_ASRLINT_LINT_H_
